//! Instruction definitions and static classification.

use std::fmt;

use crate::reg::Reg;

/// A dpCore instruction.
///
/// The ISA is 64-bit MIPS-like: three-operand register ALU ops, 16-bit
/// immediate forms, explicit load/store with sign/zero-extension, compare-
/// and-branch, plus the analytics extensions the paper describes in §2.2:
/// `CRC32`, `POPC`, `BVLD`, `FILT`, software-coherence cache ops, the DMS
/// `push`/`wfe` interface and ATE accesses (the latter three surface as
/// [`Trap`](crate::interp::Trap)s to the SoC model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    // --- ALU, register form ---
    /// `rd = rs + rt` (wrapping, 64-bit).
    Add { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs - rt`.
    Sub { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs & rt`.
    And { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs | rt`.
    Or { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs ^ rt`.
    Xor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = !(rs | rt)`.
    Nor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = (rs < rt) ? 1 : 0`, signed.
    Slt { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = (rs < rt) ? 1 : 0`, unsigned.
    Sltu { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs * rt` on the variable-latency low-power multiplier.
    Mul { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs << rt` (variable shift).
    Sllv { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs >> rt` logical (variable shift).
    Srlv { rd: Reg, rs: Reg, rt: Reg },

    // --- shifts, immediate form ---
    /// `rd = rt << shamt`.
    Sll { rd: Reg, rt: Reg, shamt: u8 },
    /// `rd = rt >> shamt`, logical.
    Srl { rd: Reg, rt: Reg, shamt: u8 },
    /// `rd = rt >> shamt`, arithmetic.
    Sra { rd: Reg, rt: Reg, shamt: u8 },

    // --- ALU, immediate form (imm sign-extended unless noted) ---
    /// `rt = rs + imm`.
    Addi { rt: Reg, rs: Reg, imm: i16 },
    /// `rt = rs & zext(imm)`.
    Andi { rt: Reg, rs: Reg, imm: u16 },
    /// `rt = rs | zext(imm)`.
    Ori { rt: Reg, rs: Reg, imm: u16 },
    /// `rt = rs ^ zext(imm)`.
    Xori { rt: Reg, rs: Reg, imm: u16 },
    /// `rt = (rs < imm) ? 1 : 0`, signed.
    Slti { rt: Reg, rs: Reg, imm: i16 },
    /// `rt = imm << 16`.
    Lui { rt: Reg, imm: u16 },

    // --- loads/stores (DMEM or physical DDR addressing) ---
    /// Load sign-extended byte.
    Lb { rt: Reg, rs: Reg, off: i16 },
    /// Load zero-extended byte.
    Lbu { rt: Reg, rs: Reg, off: i16 },
    /// Load sign-extended 16-bit halfword.
    Lh { rt: Reg, rs: Reg, off: i16 },
    /// Load zero-extended 16-bit halfword.
    Lhu { rt: Reg, rs: Reg, off: i16 },
    /// Load sign-extended 32-bit word.
    Lw { rt: Reg, rs: Reg, off: i16 },
    /// Load zero-extended 32-bit word.
    Lwu { rt: Reg, rs: Reg, off: i16 },
    /// Load 64-bit doubleword.
    Ld { rt: Reg, rs: Reg, off: i16 },
    /// Store low byte.
    Sb { rt: Reg, rs: Reg, off: i16 },
    /// Store low 16 bits.
    Sh { rt: Reg, rs: Reg, off: i16 },
    /// Store low 32 bits.
    Sw { rt: Reg, rs: Reg, off: i16 },
    /// Store 64 bits.
    Sd { rt: Reg, rs: Reg, off: i16 },

    // --- control flow (off counts instructions relative to next pc) ---
    /// Branch if `rs == rt`.
    Beq { rs: Reg, rt: Reg, off: i16 },
    /// Branch if `rs != rt`.
    Bne { rs: Reg, rt: Reg, off: i16 },
    /// Branch if `rs < rt`, signed.
    Blt { rs: Reg, rt: Reg, off: i16 },
    /// Branch if `rs >= rt`, signed.
    Bge { rs: Reg, rt: Reg, off: i16 },
    /// Unconditional jump to absolute instruction index.
    J { target: u32 },
    /// Jump and link (return address in r31).
    Jal { target: u32 },
    /// Jump to register.
    Jr { rs: Reg },

    // --- analytics extensions (§2.2) ---
    /// `rd = crc32c_step(rs, rt)`: one step of the hardware CRC32 engine
    /// folding the low 32 bits of `rt` into the running checksum in `rs`.
    Crc32 { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = popcount(rs)`.
    Popc { rd: Reg, rs: Reg },
    /// Bit-vector load: `rt = mem64[rs + off]`, tagged for the single-cycle
    /// bit-vector datapath used with `FILT` and scatter/gather masks.
    Bvld { rt: Reg, rs: Reg, off: i16 },
    /// Filter: `rd = (rd << 1) | (lo(rt) <= rs_32 <= hi(rt))` — evaluates a
    /// band predicate on the signed low 32 bits of `rs` against the two
    /// 32-bit bounds packed in `rt`, shifting the outcome into the
    /// bit-vector accumulator `rd`.
    Filt { rd: Reg, rs: Reg, rt: Reg },

    // --- system / SoC interface ---
    /// Wait-for-event: blocks until DMS event `rs & 31` is set (trap).
    Wfe { rs: Reg },
    /// Clear DMS event `rs & 31` (trap).
    Clev { rs: Reg },
    /// Push the DMS descriptor at DMEM address `rs` onto channel `chan` (trap).
    DmsPush { chan: u8, rs: Reg },
    /// Issue an ATE request whose DMEM-resident message is at `rs` (trap).
    AteReq { rs: Reg },
    /// Memory fence for the relaxed memory model.
    Fence,
    /// Flush the cache line containing address `rs` (software coherence).
    CFlush { rs: Reg },
    /// Invalidate the cache line containing address `rs`.
    CInval { rs: Reg },
    /// Stop the core (trap).
    Halt,
    /// No operation.
    Nop,
}

/// The issue pipe an instruction occupies in the dual-issue pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipe {
    /// ALU pipe: arithmetic, logic, shifts, branches, analytics ops.
    Alu,
    /// Load/store pipe: memory accesses, cache ops, DMS/ATE interface.
    Lsu,
}

impl Inst {
    /// Which pipe the instruction issues on.
    pub fn pipe(self) -> Pipe {
        use Inst::*;
        match self {
            Lb { .. }
            | Lbu { .. }
            | Lh { .. }
            | Lhu { .. }
            | Lw { .. }
            | Lwu { .. }
            | Ld { .. }
            | Sb { .. }
            | Sh { .. }
            | Sw { .. }
            | Sd { .. }
            | Bvld { .. }
            | Fence
            | CFlush { .. }
            | CInval { .. }
            | DmsPush { .. }
            | AteReq { .. } => Pipe::Lsu,
            _ => Pipe::Alu,
        }
    }

    /// True for loads (result comes from memory).
    pub fn is_load(self) -> bool {
        use Inst::*;
        matches!(
            self,
            Lb { .. }
                | Lbu { .. }
                | Lh { .. }
                | Lhu { .. }
                | Lw { .. }
                | Lwu { .. }
                | Ld { .. }
                | Bvld { .. }
        )
    }

    /// True for stores.
    pub fn is_store(self) -> bool {
        use Inst::*;
        matches!(self, Sb { .. } | Sh { .. } | Sw { .. } | Sd { .. })
    }

    /// True for conditional branches (predicted by the static predictor).
    pub fn is_cond_branch(self) -> bool {
        use Inst::*;
        matches!(self, Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. })
    }

    /// The destination register, if the instruction writes one.
    pub fn dest(self) -> Option<Reg> {
        use Inst::*;
        match self {
            Add { rd, .. }
            | Sub { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Nor { rd, .. }
            | Slt { rd, .. }
            | Sltu { rd, .. }
            | Mul { rd, .. }
            | Sllv { rd, .. }
            | Srlv { rd, .. }
            | Sll { rd, .. }
            | Srl { rd, .. }
            | Sra { rd, .. }
            | Crc32 { rd, .. }
            | Popc { rd, .. }
            | Filt { rd, .. } => Some(rd),
            Addi { rt, .. }
            | Andi { rt, .. }
            | Ori { rt, .. }
            | Xori { rt, .. }
            | Slti { rt, .. }
            | Lui { rt, .. }
            | Lb { rt, .. }
            | Lbu { rt, .. }
            | Lh { rt, .. }
            | Lhu { rt, .. }
            | Lw { rt, .. }
            | Lwu { rt, .. }
            | Ld { rt, .. }
            | Bvld { rt, .. } => Some(rt),
            Jal { .. } => Some(Reg::LINK),
            _ => None,
        }
    }

    /// Source registers read by the instruction (up to three).
    pub fn sources(self) -> Vec<Reg> {
        use Inst::*;
        match self {
            Add { rs, rt, .. }
            | Sub { rs, rt, .. }
            | And { rs, rt, .. }
            | Or { rs, rt, .. }
            | Xor { rs, rt, .. }
            | Nor { rs, rt, .. }
            | Slt { rs, rt, .. }
            | Sltu { rs, rt, .. }
            | Mul { rs, rt, .. }
            | Sllv { rs, rt, .. }
            | Srlv { rs, rt, .. }
            | Crc32 { rs, rt, .. }
            | Beq { rs, rt, .. }
            | Bne { rs, rt, .. }
            | Blt { rs, rt, .. }
            | Bge { rs, rt, .. } => vec![rs, rt],
            // FILT also reads its accumulator rd.
            Filt { rd, rs, rt } => vec![rd, rs, rt],
            Sll { rt, .. } | Srl { rt, .. } | Sra { rt, .. } => vec![rt],
            Addi { rs, .. }
            | Andi { rs, .. }
            | Ori { rs, .. }
            | Xori { rs, .. }
            | Slti { rs, .. }
            | Popc { rs, .. }
            | Jr { rs }
            | Wfe { rs }
            | Clev { rs }
            | DmsPush { rs, .. }
            | AteReq { rs }
            | CFlush { rs }
            | CInval { rs } => vec![rs],
            Lb { rs, .. }
            | Lbu { rs, .. }
            | Lh { rs, .. }
            | Lhu { rs, .. }
            | Lw { rs, .. }
            | Lwu { rs, .. }
            | Ld { rs, .. }
            | Bvld { rs, .. } => vec![rs],
            Sb { rt, rs, .. } | Sh { rt, rs, .. } | Sw { rt, rs, .. } | Sd { rt, rs, .. } => {
                vec![rt, rs]
            }
            Lui { .. } | J { .. } | Jal { .. } | Fence | Halt | Nop => vec![],
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        match *self {
            Add { rd, rs, rt } => write!(f, "add {rd}, {rs}, {rt}"),
            Sub { rd, rs, rt } => write!(f, "sub {rd}, {rs}, {rt}"),
            And { rd, rs, rt } => write!(f, "and {rd}, {rs}, {rt}"),
            Or { rd, rs, rt } => write!(f, "or {rd}, {rs}, {rt}"),
            Xor { rd, rs, rt } => write!(f, "xor {rd}, {rs}, {rt}"),
            Nor { rd, rs, rt } => write!(f, "nor {rd}, {rs}, {rt}"),
            Slt { rd, rs, rt } => write!(f, "slt {rd}, {rs}, {rt}"),
            Sltu { rd, rs, rt } => write!(f, "sltu {rd}, {rs}, {rt}"),
            Mul { rd, rs, rt } => write!(f, "mul {rd}, {rs}, {rt}"),
            Sllv { rd, rs, rt } => write!(f, "sllv {rd}, {rs}, {rt}"),
            Srlv { rd, rs, rt } => write!(f, "srlv {rd}, {rs}, {rt}"),
            Sll { rd, rt, shamt } => write!(f, "sll {rd}, {rt}, {shamt}"),
            Srl { rd, rt, shamt } => write!(f, "srl {rd}, {rt}, {shamt}"),
            Sra { rd, rt, shamt } => write!(f, "sra {rd}, {rt}, {shamt}"),
            Addi { rt, rs, imm } => write!(f, "addi {rt}, {rs}, {imm}"),
            Andi { rt, rs, imm } => write!(f, "andi {rt}, {rs}, {imm}"),
            Ori { rt, rs, imm } => write!(f, "ori {rt}, {rs}, {imm}"),
            Xori { rt, rs, imm } => write!(f, "xori {rt}, {rs}, {imm}"),
            Slti { rt, rs, imm } => write!(f, "slti {rt}, {rs}, {imm}"),
            Lui { rt, imm } => write!(f, "lui {rt}, {imm}"),
            Lb { rt, rs, off } => write!(f, "lb {rt}, {off}({rs})"),
            Lbu { rt, rs, off } => write!(f, "lbu {rt}, {off}({rs})"),
            Lh { rt, rs, off } => write!(f, "lh {rt}, {off}({rs})"),
            Lhu { rt, rs, off } => write!(f, "lhu {rt}, {off}({rs})"),
            Lw { rt, rs, off } => write!(f, "lw {rt}, {off}({rs})"),
            Lwu { rt, rs, off } => write!(f, "lwu {rt}, {off}({rs})"),
            Ld { rt, rs, off } => write!(f, "ld {rt}, {off}({rs})"),
            Sb { rt, rs, off } => write!(f, "sb {rt}, {off}({rs})"),
            Sh { rt, rs, off } => write!(f, "sh {rt}, {off}({rs})"),
            Sw { rt, rs, off } => write!(f, "sw {rt}, {off}({rs})"),
            Sd { rt, rs, off } => write!(f, "sd {rt}, {off}({rs})"),
            Beq { rs, rt, off } => write!(f, "beq {rs}, {rt}, {off}"),
            Bne { rs, rt, off } => write!(f, "bne {rs}, {rt}, {off}"),
            Blt { rs, rt, off } => write!(f, "blt {rs}, {rt}, {off}"),
            Bge { rs, rt, off } => write!(f, "bge {rs}, {rt}, {off}"),
            J { target } => write!(f, "j {target}"),
            Jal { target } => write!(f, "jal {target}"),
            Jr { rs } => write!(f, "jr {rs}"),
            Crc32 { rd, rs, rt } => write!(f, "crc32 {rd}, {rs}, {rt}"),
            Popc { rd, rs } => write!(f, "popc {rd}, {rs}"),
            Bvld { rt, rs, off } => write!(f, "bvld {rt}, {off}({rs})"),
            Filt { rd, rs, rt } => write!(f, "filt {rd}, {rs}, {rt}"),
            Wfe { rs } => write!(f, "wfe {rs}"),
            Clev { rs } => write!(f, "clev {rs}"),
            DmsPush { chan, rs } => write!(f, "dmspush {chan}, {rs}"),
            AteReq { rs } => write!(f, "atereq {rs}"),
            Fence => write!(f, "fence"),
            CFlush { rs } => write!(f, "cflush {rs}"),
            CInval { rs } => write!(f, "cinval {rs}"),
            Halt => write!(f, "halt"),
            Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::of(i)
    }

    #[test]
    fn pipe_classification() {
        assert_eq!(Inst::Add { rd: r(1), rs: r(2), rt: r(3) }.pipe(), Pipe::Alu);
        assert_eq!(Inst::Lw { rt: r(1), rs: r(2), off: 0 }.pipe(), Pipe::Lsu);
        assert_eq!(Inst::Filt { rd: r(1), rs: r(2), rt: r(3) }.pipe(), Pipe::Alu);
        assert_eq!(Inst::Bvld { rt: r(1), rs: r(2), off: 0 }.pipe(), Pipe::Lsu);
        assert_eq!(Inst::DmsPush { chan: 0, rs: r(1) }.pipe(), Pipe::Lsu);
    }

    #[test]
    fn load_store_predicates() {
        assert!(Inst::Lw { rt: r(1), rs: r(2), off: 0 }.is_load());
        assert!(Inst::Bvld { rt: r(1), rs: r(2), off: 0 }.is_load());
        assert!(Inst::Sd { rt: r(1), rs: r(2), off: 0 }.is_store());
        assert!(!Inst::Add { rd: r(1), rs: r(2), rt: r(3) }.is_load());
    }

    #[test]
    fn branch_predicate() {
        assert!(Inst::Beq { rs: r(1), rt: r(2), off: -4 }.is_cond_branch());
        assert!(!Inst::J { target: 0 }.is_cond_branch());
    }

    #[test]
    fn dest_and_sources() {
        let add = Inst::Add { rd: r(1), rs: r(2), rt: r(3) };
        assert_eq!(add.dest(), Some(r(1)));
        assert_eq!(add.sources(), vec![r(2), r(3)]);

        let sw = Inst::Sw { rt: r(4), rs: r(5), off: 8 };
        assert_eq!(sw.dest(), None);
        assert_eq!(sw.sources(), vec![r(4), r(5)]);

        let jal = Inst::Jal { target: 7 };
        assert_eq!(jal.dest(), Some(Reg::LINK));
        assert!(jal.sources().is_empty());

        // FILT reads its own accumulator.
        let filt = Inst::Filt { rd: r(6), rs: r(7), rt: r(8) };
        assert_eq!(filt.sources(), vec![r(6), r(7), r(8)]);
    }

    #[test]
    fn display_smoke() {
        assert_eq!(Inst::Addi { rt: r(1), rs: r(0), imm: -5 }.to_string(), "addi r1, r0, -5");
        assert_eq!(Inst::Lw { rt: r(2), rs: r(3), off: 16 }.to_string(), "lw r2, 16(r3)");
    }
}
