//! Selection bit vectors.
//!
//! Filters produce one bit per row (the `FILT` instruction shifts results
//! into a 64-bit accumulator, stored to DMEM every 64 rows); downstream
//! operators consume them as scatter/gather masks for the DMS.

/// A row-selection bit vector.
///
/// # Example
///
/// ```
/// use dpu_sql::BitVec;
/// let mut bv = BitVec::new(10);
/// bv.set(3);
/// bv.set(7);
/// assert_eq!(bv.count(), 2);
/// assert_eq!(bv.iter_set().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// A cleared vector of `len` bits.
    pub fn new(len: usize) -> Self {
        BitVec { words: vec![0; len.div_ceil(64)], len }
    }

    /// Builds from packed 64-bit words (little-endian bit order), the
    /// form the SWAR filter kernel and the FILT accumulator both emit.
    /// Bits of the final word at positions `>= len % 64` are masked off,
    /// preserving the invariant that tail bits beyond `len` are zero
    /// (so [`Self::count`] and word-level consumers never see garbage).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != len.div_ceil(64)`.
    pub fn from_words(len: usize, mut words: Vec<u64>) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch for {len} bits");
        let tail_bits = len % 64;
        if tail_bits != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
        BitVec { words, len }
    }

    /// Builds from a predicate over row indices.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut bv = BitVec::new(len);
        for i in 0..len {
            if f(i) {
                bv.set(i);
            }
        }
        bv
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range");
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range");
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range");
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Population count (uses the dpCore's single-cycle POPC per word).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Selectivity in `[0, 1]`.
    pub fn selectivity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count() as f64 / self.len as f64
        }
    }

    /// Iterator over set bit indices, ascending.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// Iterator over set bit indices within `[lo, hi)`, ascending —
    /// word-driven like [`Self::iter_set`] (the first and last partial
    /// words are masked once; no per-row `get` calls), so chunked
    /// consumers of filter output pay per set bit, not per row.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi <= len`.
    pub fn iter_set_in(&self, lo: usize, hi: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(lo <= hi && hi <= self.len, "range [{lo}, {hi}) out of bounds");
        let (wlo, whi) = (lo / 64, hi.div_ceil(64));
        self.words[wlo..whi].iter().enumerate().flat_map(move |(i, &w)| {
            let wi = wlo + i;
            let mut w = w;
            if wi * 64 < lo {
                w &= !0u64 << (lo - wi * 64);
            }
            if (wi + 1) * 64 > hi {
                // hi > wi*64 (the word overlaps the range), so the
                // shift distance stays in 1..=63 ... unless hi == wi*64,
                // excluded by whi = ceil(hi / 64).
                w &= !0u64 >> ((wi + 1) * 64 - hi);
            }
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// Bitwise AND of two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "length mismatch");
        BitVec {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect(),
            len: self.len,
        }
    }

    /// The raw 64-bit words (little-endian bit order), for DMS staging.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Serializes to bytes for the DMEM→DMS bit-vector transfer.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bv = BitVec::new(130);
        bv.set(0);
        bv.set(64);
        bv.set(129);
        assert!(bv.get(0) && bv.get(64) && bv.get(129));
        assert!(!bv.get(1));
        bv.clear(64);
        assert!(!bv.get(64));
        assert_eq!(bv.count(), 2);
        assert_eq!(bv.len(), 130);
        assert!(!bv.is_empty());
    }

    #[test]
    fn iteration_is_ascending_and_complete() {
        let bv = BitVec::from_fn(200, |i| i % 7 == 0);
        let got: Vec<usize> = bv.iter_set().collect();
        let want: Vec<usize> = (0..200).filter(|i| i % 7 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn range_iteration_matches_filtered_full_iteration() {
        let bv = BitVec::from_fn(300, |i| i % 3 == 0 || i % 7 == 0);
        for (lo, hi) in
            [(0, 300), (0, 0), (300, 300), (5, 5), (0, 64), (63, 65), (64, 128), (1, 299), (70, 71)]
        {
            let got: Vec<usize> = bv.iter_set_in(lo, hi).collect();
            let want: Vec<usize> = bv.iter_set().filter(|&i| (lo..hi).contains(&i)).collect();
            assert_eq!(got, want, "range [{lo}, {hi})");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn range_iteration_rejects_backwards_ranges() {
        let bv = BitVec::new(10);
        let _ = bv.iter_set_in(5, 4);
    }

    #[test]
    fn and_intersects() {
        let a = BitVec::from_fn(100, |i| i % 2 == 0);
        let b = BitVec::from_fn(100, |i| i % 3 == 0);
        let c = a.and(&b);
        assert_eq!(c.count(), (0..100).filter(|i| i % 6 == 0).count());
    }

    #[test]
    fn selectivity_bounds() {
        assert_eq!(BitVec::new(0).selectivity(), 0.0);
        let full = BitVec::from_fn(64, |_| true);
        assert_eq!(full.selectivity(), 1.0);
    }

    #[test]
    fn bytes_roundtrip_shape() {
        let bv = BitVec::from_fn(64, |i| i < 3);
        assert_eq!(bv.to_bytes()[0], 0b111);
        assert_eq!(bv.to_bytes().len(), 8);
        assert_eq!(bv.words(), &[0b111]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_panics() {
        BitVec::new(5).get(5);
    }

    #[test]
    fn from_words_masks_the_tail_word() {
        // 70 bits over 2 words: bits 6..64 of the second word are junk
        // and must be cleared so popcount sees only real rows.
        let bv = BitVec::from_words(70, vec![u64::MAX, u64::MAX]);
        assert_eq!(bv.count(), 70);
        assert_eq!(bv.words()[1], (1 << 6) - 1);
        // Exact multiples of 64 keep every word bit.
        let full = BitVec::from_words(128, vec![u64::MAX, u64::MAX]);
        assert_eq!(full.count(), 128);
        // Zero-length vectors carry no words.
        assert_eq!(BitVec::from_words(0, vec![]).count(), 0);
    }

    #[test]
    fn word_popcount_equals_per_bit_count() {
        // The word-level POPC path must agree with counting bits one by
        // one via get(), including a masked tail word.
        for len in [1usize, 63, 64, 65, 130, 200] {
            let bv = BitVec::from_words(
                len,
                (0..len.div_ceil(64))
                    .map(|w| 0xA5A5_5A5A_DEAD_BEEFu64.rotate_left(w as u32))
                    .collect(),
            );
            let per_bit = (0..len).filter(|&i| bv.get(i)).count();
            assert_eq!(bv.count(), per_bit, "len={len}");
            assert_eq!(bv.iter_set().count(), per_bit, "len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn from_words_rejects_wrong_word_count() {
        BitVec::from_words(65, vec![0]);
    }
}
