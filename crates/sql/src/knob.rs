//! Unified environment-knob resolution.
//!
//! The engine's three pure-performance knobs — `DPU_THREADS` (pool
//! width), `DPU_VECTOR` (scalar vs SWAR kernels), `DPU_PACK` (flat vs
//! packed column execution) — share one contract: the variable is
//! parsed **once** per process, the resolved choice is cached, and an
//! in-process `set_*` override exists for benches that compare
//! settings. The shared cache cell is [`dpu_pool::EnvKnob`] (the pool
//! crate sits below everything, so all three knobs can use it); this
//! module owns the spelling parsers, and each knob's enum lives next
//! to the code it selects ([`crate::vector::Kernel`],
//! [`crate::column::Pack`]).
//!
//! Accepted spellings, pinned by the tests below:
//!
//! | knob          | spelling                         | meaning           |
//! |---------------|----------------------------------|-------------------|
//! | `DPU_THREADS` | positive integer                 | worker count      |
//! | `DPU_THREADS` | unset / `0` / garbage            | host parallelism  |
//! | `DPU_VECTOR`  | `off`, `0`, `false`, `scalar`    | scalar reference  |
//! | `DPU_VECTOR`  | `hwcrc`, `hw`                    | SWAR + `crc32q`   |
//! | `DPU_VECTOR`  | unset / anything else            | table-driven SWAR |
//! | `DPU_PACK`    | `off`, `0`, `false`, `flat`      | flat columns      |
//! | `DPU_PACK`    | unset / anything else            | packed columns    |

pub use dpu_pool::EnvKnob;

/// `DPU_VECTOR` spelling → [`crate::vector::Kernel`] cache code
/// (1 = scalar, 2 = SWAR, 3 = hardware CRC). Hardware availability is
/// *not* checked here — [`crate::vector::set_kernel`] degrades HwCrc
/// to Swar on hosts without SSE4.2.
pub fn kernel_code(v: Option<&str>) -> usize {
    match v {
        Some("off") | Some("0") | Some("false") | Some("scalar") => 1,
        Some("hwcrc") | Some("hw") => 3,
        _ => 2,
    }
}

/// `DPU_PACK` spelling → [`crate::column::Pack`] cache code
/// (1 = off/flat, 2 = on/packed). Packed execution is the default,
/// mirroring `DPU_VECTOR`'s SWAR default.
pub fn pack_code(v: Option<&str>) -> usize {
    match v {
        Some("off") | Some("0") | Some("false") | Some("flat") => 1,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Pack;
    use crate::vector::Kernel;
    use dpu_pool::parse_threads;

    #[test]
    fn thread_spellings() {
        assert_eq!(parse_threads(Some("1"), 7), 1);
        assert_eq!(parse_threads(Some("16"), 7), 16);
        // Unset, zero, negative, and garbage all fall back.
        assert_eq!(parse_threads(None, 7), 7);
        assert_eq!(parse_threads(Some("0"), 7), 7);
        assert_eq!(parse_threads(Some("-2"), 7), 7);
        assert_eq!(parse_threads(Some("many"), 7), 7);
        assert_eq!(parse_threads(Some(""), 7), 7);
    }

    #[test]
    fn vector_spellings() {
        for off in ["off", "0", "false", "scalar"] {
            assert_eq!(kernel_code(Some(off)), 1, "{off:?}");
        }
        for hw in ["hwcrc", "hw"] {
            assert_eq!(kernel_code(Some(hw)), 3, "{hw:?}");
        }
        for swar in [None, Some("swar"), Some("on"), Some("1"), Some("anything")] {
            assert_eq!(kernel_code(swar), 2, "{swar:?}");
        }
    }

    #[test]
    fn pack_spellings() {
        for off in ["off", "0", "false", "flat"] {
            assert_eq!(pack_code(Some(off)), 1, "{off:?}");
        }
        for on in [None, Some("on"), Some("1"), Some("packed"), Some("anything")] {
            assert_eq!(pack_code(on), 2, "{on:?}");
        }
    }

    #[test]
    fn codes_round_trip_through_the_enums() {
        // The parser codes must match what the resolvers store: scalar
        // and packed/flat choices survive a set/get round trip.
        let (k0, p0) = (crate::vector::kernel(), crate::column::pack());
        crate::vector::set_kernel(Kernel::Scalar);
        assert_eq!(crate::vector::kernel(), Kernel::Scalar);
        crate::column::set_pack(Pack::Off);
        assert_eq!(crate::column::pack(), Pack::Off);
        crate::column::set_pack(Pack::On);
        assert_eq!(crate::column::pack(), Pack::On);
        crate::vector::set_kernel(k0);
        crate::column::set_pack(p0);
    }

    #[test]
    fn knob_cell_caches_and_overrides() {
        static K: EnvKnob = EnvKnob::new("DPU_TEST_KNOB_NEVER_SET");
        // First get parses (env unset → parser sees None), later gets
        // hit the cache without re-parsing.
        assert_eq!(K.get(|v| if v.is_none() { 5 } else { 9 }), 5);
        assert_eq!(K.get(|_| unreachable!("cached")), 5);
        // Overrides keep working after resolution.
        K.set(3);
        assert_eq!(K.get(|_| unreachable!("cached")), 3);
    }
}
