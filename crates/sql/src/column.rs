//! Columnar tables and the compressed (FOR/bit-packed) column layer.
//!
//! Tables are stored column-major, as the DPU's SQL engine (and the
//! commercial in-memory columnar database it offloads from) requires.
//! Values are held as `i64` in the engine and materialized into physical
//! DRAM at a declared width for the DMS to stream.
//!
//! Since PR 9, every column can additionally carry a [`PackedColumn`]:
//! per-chunk frame-of-reference encoding at power-of-two bit widths
//! (1/2/4/8/16/32/64 bits per value packed into `u64` words), built
//! once at load time. The paper's DPU is a memory-bandwidth machine —
//! scans are priced by bytes streamed — so shrinking the resident
//! representation is the single biggest scan lever; the SWAR filter
//! kernel evaluates predicates directly on the packed words
//! ([`crate::vector::filter_band_packed`]) while the other operators
//! unpack referenced columns in lane batches. The `DPU_PACK` knob
//! ([`pack`]/[`set_pack`]) selects the execution path with the same
//! contract as `DPU_VECTOR`: resolved once, overridable in process,
//! and **pure performance** — results are bit-identical either way
//! (`tests/pack_properties.rs` pins this differentially).

use std::borrow::Cow;

use dpu_mem::PhysMem;
use dpu_pool::EnvKnob;

/// Rows per frame-of-reference chunk. A multiple of 64 so chunk
/// boundaries align with selection-word boundaries, and small enough
/// that a chunk's `[min, max]` band stays tight on clustered data
/// (dates, keys dense in a shard).
pub const PACK_CHUNK_ROWS: usize = 1024;

/// Modeled bytes of one chunk header when resident (frame + max + bit
/// width, alignment-padded).
pub const PACK_HEADER_BYTES: u64 = 24;

/// Whether the engine executes on packed columns (`DPU_PACK`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pack {
    /// Flat `Vec<i64>` execution (the exact pre-packing paths).
    Off,
    /// Packed execution: encoded-domain filters, lane-batched unpack
    /// elsewhere. Bit-identical to [`Pack::Off`], faster.
    On,
}

impl Pack {
    /// True when packed execution is selected.
    pub fn on(self) -> bool {
        self == Pack::On
    }
}

/// The resolved pack choice (1 = off, 2 = on; 0 = unresolved).
static PACK: EnvKnob = EnvKnob::new("DPU_PACK");

/// The process-wide pack choice: the last [`set_pack`] value, else
/// `DPU_PACK` (`off`, `0`, `false` or `flat` → [`Pack::Off`], anything
/// else → [`Pack::On`]), else [`Pack::On`]. Resolved once, like
/// `DPU_VECTOR` and `DPU_THREADS`.
pub fn pack() -> Pack {
    if PACK.get(crate::knob::pack_code) == 1 {
        Pack::Off
    } else {
        Pack::On
    }
}

/// Overrides the pack choice for subsequent [`pack`] calls (benches and
/// tests that compare the arms in one process).
pub fn set_pack(p: Pack) {
    PACK.set(match p {
        Pack::Off => 1,
        Pack::On => 2,
    })
}

/// One chunk's frame-of-reference header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackChunk {
    /// The frame: the chunk's minimum value. Stored deltas are
    /// `v.wrapping_sub(frame) as u64`, exact because `max − min`
    /// always fits in a `u64`.
    pub frame: i64,
    /// The chunk's maximum value (with `frame`, an exact zone map).
    pub max: i64,
    /// Bits per stored delta: 1, 2, 4, 8, 16, 32 or 64.
    pub bits: u8,
    /// First word of this chunk in the column's word stream.
    pub off: usize,
}

/// A frame-of-reference, bit-packed column: per-chunk headers plus a
/// contiguous `u64` word stream, `64 / bits` delta lanes per word
/// (LSB-first). Built once from the flat values; decoding is exact for
/// every `i64` including `i64::MIN`/`MAX`, because deltas live in the
/// unsigned `[0, max − min]` domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedColumn {
    len: usize,
    chunks: Vec<PackChunk>,
    words: Vec<u64>,
}

/// The packed bit width covering an unsigned delta range: the smallest
/// power of two ≥ the bit length of `range` (1 for all-constant
/// chunks).
fn bits_for(range: u64) -> u8 {
    let needed = (64 - range.leading_zeros()).max(1);
    needed.next_power_of_two() as u8
}

impl PackedColumn {
    /// Encodes `values` chunk by chunk ([`PACK_CHUNK_ROWS`] rows per
    /// chunk, bit width chosen from each chunk's min/max). Always
    /// succeeds; [`Column::encode_packed`] decides whether the packing
    /// *pays* against the flat representation.
    pub fn encode(values: &[i64]) -> PackedColumn {
        let mut chunks = Vec::with_capacity(values.len().div_ceil(PACK_CHUNK_ROWS));
        let mut words = Vec::new();
        for chunk in values.chunks(PACK_CHUNK_ROWS) {
            let (mut min, mut max) = (chunk[0], chunk[0]);
            for &v in chunk {
                min = min.min(v);
                max = max.max(v);
            }
            let bits = bits_for(max.wrapping_sub(min) as u64);
            let off = words.len();
            if bits == 64 {
                words.extend(chunk.iter().map(|&v| v.wrapping_sub(min) as u64));
            } else {
                let vpw = 64 / bits as usize;
                for group in chunk.chunks(vpw) {
                    let mut w = 0u64;
                    for (lane, &v) in group.iter().enumerate() {
                        w |= (v.wrapping_sub(min) as u64) << (lane * bits as usize);
                    }
                    words.push(w);
                }
            }
            chunks.push(PackChunk { frame: min, max, bits, off });
        }
        PackedColumn { len: values.len(), chunks, words }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The chunk headers, in row order.
    pub fn chunks(&self) -> &[PackChunk] {
        &self.chunks
    }

    /// Rows in chunk `ci` (all chunks hold [`PACK_CHUNK_ROWS`] rows
    /// except possibly the last).
    pub fn chunk_rows(&self, ci: usize) -> usize {
        if ci + 1 < self.chunks.len() {
            PACK_CHUNK_ROWS
        } else {
            self.len - ci * PACK_CHUNK_ROWS
        }
    }

    /// The packed words of chunk `ci`.
    pub fn chunk_words(&self, ci: usize) -> &[u64] {
        let end = self.chunks.get(ci + 1).map_or(self.words.len(), |c| c.off);
        &self.words[self.chunks[ci].off..end]
    }

    /// Random access: the decoded value of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> i64 {
        assert!(i < self.len, "row {i} out of range ({} rows)", self.len);
        let ch = &self.chunks[i / PACK_CHUNK_ROWS];
        let r = i % PACK_CHUNK_ROWS;
        let delta = if ch.bits == 64 {
            self.words[ch.off + r]
        } else {
            let vpw = 64 / ch.bits as usize;
            let word = self.words[ch.off + r / vpw];
            let mask = (1u64 << ch.bits) - 1;
            (word >> ((r % vpw) * ch.bits as usize)) & mask
        };
        ch.frame.wrapping_add(delta as i64)
    }

    /// Decodes the whole column — the lane-batched unpack the
    /// non-filter operators stream through: one word load yields
    /// `64 / bits` values by shift-and-mask before the next load.
    pub fn unpack(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.len);
        for (ci, ch) in self.chunks.iter().enumerate() {
            let rows = self.chunk_rows(ci);
            let words = self.chunk_words(ci);
            if ch.bits == 64 {
                out.extend(words.iter().map(|&d| ch.frame.wrapping_add(d as i64)));
                continue;
            }
            let vpw = 64 / ch.bits as usize;
            let mask = (1u64 << ch.bits) - 1;
            let mut remaining = rows;
            for &word in words {
                let take = remaining.min(vpw);
                let mut x = word;
                for _ in 0..take {
                    out.push(ch.frame.wrapping_add((x & mask) as i64));
                    x >>= ch.bits;
                }
                remaining -= take;
            }
        }
        out
    }

    /// Resident bytes of the packed representation: the word stream
    /// plus [`PACK_HEADER_BYTES`] per chunk header.
    pub fn packed_bytes(&self) -> u64 {
        self.words.len() as u64 * 8 + self.chunks.len() as u64 * PACK_HEADER_BYTES
    }

    /// Average stored bits per value, headers included.
    pub fn bits_per_value(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.packed_bytes() as f64 * 8.0 / self.len as f64
        }
    }
}

/// One column: a name, a declared storage width, values, and (when
/// packing pays) the packed resident representation.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Storage width in bytes (1, 2, 4 or 8) when materialized.
    pub width: u8,
    /// Values (sign-extended to i64 in the engine).
    pub data: Vec<i64>,
    /// The packed representation, when [`Column::encode_packed`] found
    /// it pays. Always decodes to exactly `data`; the `DPU_PACK` knob
    /// picks which copy the kernels read.
    pub packed: Option<PackedColumn>,
}

impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        // `packed` is a derived cache of `data`: semantic equality
        // ignores it, so operator outputs (never packed) compare equal
        // to encoded build-side tables with the same values.
        self.name == other.name && self.width == other.width && self.data == other.data
    }
}

impl Eq for Column {}

impl Column {
    /// Creates a 4-byte column.
    pub fn i32(name: &str, data: Vec<i64>) -> Self {
        Column { name: name.to_string(), width: 4, data, packed: None }
    }

    /// Creates an 8-byte column.
    pub fn i64(name: &str, data: Vec<i64>) -> Self {
        Column { name: name.to_string(), width: 8, data, packed: None }
    }

    /// Bytes when materialized flat at the declared width.
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64 * self.width as u64
    }

    /// Resident bytes the engine actually streams on a scan: the
    /// packed size when the column is packed, the flat size otherwise.
    /// Knob-independent — packing happens unconditionally at load, so
    /// simulated costs never depend on `DPU_PACK`.
    pub fn resident_bytes(&self) -> u64 {
        self.packed.as_ref().map_or_else(|| self.bytes(), PackedColumn::packed_bytes)
    }

    /// Builds the packed representation if it is smaller than the flat
    /// one (transparent fallback otherwise). Idempotent.
    pub fn encode_packed(&mut self) {
        if self.packed.is_some() || self.data.is_empty() {
            return;
        }
        let p = PackedColumn::encode(&self.data);
        if p.packed_bytes() < self.bytes() {
            self.packed = Some(p);
        }
    }

    /// The values under a pack choice: the packed representation
    /// decoded in lane batches when `pack` is on and the column is
    /// packed, the flat slice otherwise.
    pub fn values(&self, pack: Pack) -> Cow<'_, [i64]> {
        match (&self.packed, pack) {
            (Some(p), Pack::On) => Cow::Owned(p.unpack()),
            _ => Cow::Borrowed(&self.data[..]),
        }
    }
}

/// A column-major table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    /// The columns (all equal length).
    pub columns: Vec<Column>,
}

/// Physical placement of a materialized table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableLayout {
    /// DDR base address of each column.
    pub col_addrs: Vec<u64>,
    /// Row count.
    pub rows: u64,
    /// Widths per column.
    pub widths: Vec<u8>,
    /// First address past the table.
    pub end: u64,
}

impl Table {
    /// An empty table.
    pub fn new(columns: Vec<Column>) -> Self {
        if let Some(first) = columns.first() {
            for c in &columns {
                assert_eq!(c.data.len(), first.data.len(), "ragged columns");
            }
        }
        Table { columns }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.data.len())
    }

    /// Finds a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Index of a column by name.
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist (schema errors are bugs).
    pub fn col_index(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("no column {name:?}"))
    }

    /// Total bytes when materialized flat.
    pub fn bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.bytes()).sum()
    }

    /// Total resident bytes (packed columns at their packed size).
    pub fn resident_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.resident_bytes()).sum()
    }

    /// Packs every column where packing pays (see
    /// [`Column::encode_packed`]). Idempotent; called once at load.
    pub fn encode_packed(&mut self) {
        for c in &mut self.columns {
            c.encode_packed();
        }
    }

    /// A reduced table holding just the (deduplicated) referenced
    /// columns with any packed ones decoded — the bridge that lets
    /// operators without a native packed arm reuse their flat SWAR
    /// paths. Returns `None` when there is nothing to do (pack off, no
    /// referenced column packed, or an empty reference set): callers
    /// then run on `self` directly with zero copies. Safe because all
    /// operators resolve columns by name at entry.
    pub fn decode_for(&self, cols: &[&str], pack: Pack) -> Option<Table> {
        if !pack.on() {
            return None;
        }
        let mut names: Vec<&str> = Vec::new();
        for &c in cols {
            if !names.contains(&c) {
                names.push(c);
            }
        }
        let referenced: Vec<&Column> =
            names.iter().map(|&n| &self.columns[self.col_index(n)]).collect();
        if !referenced.iter().any(|c| c.packed.is_some()) {
            return None;
        }
        Some(Table::new(
            referenced
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    width: c.width,
                    data: c.values(pack).into_owned(),
                    packed: None,
                })
                .collect(),
        ))
    }

    /// Concatenates same-schema tables row-wise (shard/partition merge).
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or schemas (names, widths) differ.
    pub fn concat(tables: &[Table]) -> Table {
        let first = tables.first().expect("concat of zero tables");
        let mut columns: Vec<Column> = first
            .columns
            .iter()
            .map(|c| Column {
                name: c.name.clone(),
                width: c.width,
                data: Vec::new(),
                packed: None,
            })
            .collect();
        for t in tables {
            assert_eq!(t.columns.len(), columns.len(), "schema mismatch");
            for (dst, src) in columns.iter_mut().zip(&t.columns) {
                assert_eq!(dst.name, src.name, "schema mismatch");
                assert_eq!(dst.width, src.width, "schema mismatch");
                dst.data.extend_from_slice(&src.data);
            }
        }
        Table::new(columns)
    }

    /// One row as a value vector (column order).
    pub fn row(&self, r: usize) -> Vec<i64> {
        self.columns.iter().map(|c| c.data[r]).collect()
    }

    /// The table with rows sorted lexicographically by all columns — a
    /// canonical form for order-insensitive result comparison.
    pub fn canonicalized(&self) -> Table {
        let mut order: Vec<usize> = (0..self.rows()).collect();
        order.sort_by(|&a, &b| {
            self.columns
                .iter()
                .map(|c| c.data[a].cmp(&c.data[b]))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Table::new(
            self.columns
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    width: c.width,
                    data: order.iter().map(|&r| c.data[r]).collect(),
                    packed: None,
                })
                .collect(),
        )
    }

    /// Writes the table column-major into DRAM starting at `base`
    /// (column starts aligned to 256 B for clean AXI bursts).
    ///
    /// # Panics
    ///
    /// Panics if the memory region is too small or a value exceeds its
    /// column width.
    pub fn materialize(&self, phys: &mut PhysMem, base: u64) -> TableLayout {
        let mut addr = base;
        let mut col_addrs = Vec::new();
        for col in &self.columns {
            addr = addr.next_multiple_of(256);
            col_addrs.push(addr);
            for (i, &v) in col.data.iter().enumerate() {
                let truncated = match col.width {
                    1 => v as i8 as i64,
                    2 => v as i16 as i64,
                    4 => v as i32 as i64,
                    _ => v,
                };
                assert_eq!(truncated, v, "value {v} overflows {}B column", col.width);
                phys.write_uint(addr + i as u64 * col.width as u64, col.width as usize, v as u64);
            }
            addr += col.bytes();
        }
        TableLayout {
            col_addrs,
            rows: self.rows() as u64,
            widths: self.columns.iter().map(|c| c.width).collect(),
            end: addr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let t =
            Table::new(vec![Column::i32("a", vec![1, 2, 3]), Column::i64("b", vec![10, 20, 30])]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.column("b").unwrap().data[1], 20);
        assert_eq!(t.col_index("a"), 0);
        assert_eq!(t.bytes(), 3 * 4 + 3 * 8);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_rejected() {
        Table::new(vec![Column::i32("a", vec![1]), Column::i32("b", vec![1, 2])]);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn missing_column_panics() {
        Table::new(vec![]).col_index("x");
    }

    #[test]
    fn materialize_roundtrip() {
        let t = Table::new(vec![
            Column::i32("k", vec![5, -6, 7]),
            Column::i64("v", vec![1 << 40, -2, 3]),
        ]);
        let mut phys = PhysMem::new(4096);
        let layout = t.materialize(&mut phys, 100);
        assert_eq!(layout.rows, 3);
        assert!(layout.col_addrs[0].is_multiple_of(256));
        assert_eq!(phys.read_u32(layout.col_addrs[0] + 4) as i32, -6);
        assert_eq!(phys.read_u64(layout.col_addrs[1]) as i64, 1 << 40);
        assert_eq!(phys.read_u64(layout.col_addrs[1] + 8) as i64, -2);
        assert!(layout.end > layout.col_addrs[1]);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflow_detected_at_materialize() {
        let t = Table::new(vec![Column::i32("k", vec![i64::MAX])]);
        let mut phys = PhysMem::new(4096);
        t.materialize(&mut phys, 0);
    }

    #[test]
    fn bits_for_rounds_to_powers_of_two() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 4);
        assert_eq!(bits_for(15), 4);
        assert_eq!(bits_for(16), 8);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 16);
        assert_eq!(bits_for(65_535), 16);
        assert_eq!(bits_for(65_536), 32);
        assert_eq!(bits_for(u32::MAX as u64), 32);
        assert_eq!(bits_for(u32::MAX as u64 + 1), 64);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn pack_round_trips_across_widths_and_boundaries() {
        // One case per bit width, plus chunk-boundary row counts.
        let cases: Vec<Vec<i64>> = vec![
            vec![],
            vec![42],
            vec![7; 5000],                                          // all-constant
            (0..2049).map(|i| i % 2).collect(),                     // 1 bit
            (0..1025).map(|i| 100 + i % 4).collect(),               // 2 bits
            (0..1024).map(|i| -8 + i % 15).collect(),               // 4 bits
            (0..63).map(|i| i * 4).collect(),                       // 8 bits
            (0..65).map(|i| i * 1000).collect(),                    // 16 bits
            (0..3000).map(|i| i * 1_000_000).collect(),             // 32 bits
            (0..130).map(|i| i * (1i64 << 40)).collect(),           // 64 bits
            vec![i64::MIN, i64::MAX, 0, -1, 1, i64::MIN, i64::MAX], // extreme range
        ];
        for data in cases {
            let p = PackedColumn::encode(&data);
            assert_eq!(p.len(), data.len());
            assert_eq!(p.unpack(), data, "unpack mismatch for {} rows", data.len());
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(p.get(i), v, "get({i}) mismatch");
            }
        }
    }

    #[test]
    fn chunk_headers_are_exact_zone_maps() {
        let data: Vec<i64> = (0..2500).map(|i| (i * 37) % 1000 - 500).collect();
        let p = PackedColumn::encode(&data);
        assert_eq!(p.chunks().len(), 3);
        for (ci, ch) in p.chunks().iter().enumerate() {
            let rows = p.chunk_rows(ci);
            let lo = ci * PACK_CHUNK_ROWS;
            let slice = &data[lo..lo + rows];
            assert_eq!(ch.frame, *slice.iter().min().unwrap());
            assert_eq!(ch.max, *slice.iter().max().unwrap());
        }
    }

    #[test]
    fn encode_packed_applies_payoff_rule() {
        // Tiny domain in a wide column: packing pays.
        let mut narrow = Column::i64("flags", (0..4096).map(|i| i % 2).collect());
        narrow.encode_packed();
        let p = narrow.packed.as_ref().expect("1-bit domain should pack");
        assert!(p.packed_bytes() < narrow.bytes());
        assert_eq!(narrow.resident_bytes(), p.packed_bytes());
        assert!(p.bits_per_value() < 2.0, "got {}", p.bits_per_value());

        // Full-range values in a 4-byte column: 64-bit deltas would
        // grow the column, so the fallback keeps it flat.
        let mut wide =
            Column::i32("noise", (0..4096).map(|i| (i * 2_654_435_761i64) as i32 as i64).collect());
        wide.encode_packed();
        assert!(wide.packed.is_none(), "packing must not pay here");
        assert_eq!(wide.resident_bytes(), wide.bytes());
    }

    #[test]
    fn values_and_decode_for_respect_the_knob() {
        let mut t = Table::new(vec![
            Column::i32("k", (0..2000).map(|i| i % 8).collect()),
            Column::i64("v", (0..2000).map(|i| (i * 97) % 1_000_003).collect()),
        ]);
        let flat = t.clone();
        t.encode_packed();
        assert!(t.columns[0].packed.is_some());
        // Semantic equality ignores the packed cache.
        assert_eq!(t, flat);
        for c in &t.columns {
            assert_eq!(c.values(Pack::On).as_ref(), &c.data[..]);
            assert!(matches!(c.values(Pack::Off), Cow::Borrowed(_)));
        }
        // decode_for: None when off, when nothing referenced is packed
        // (after decode), and when the reference set is empty.
        assert!(t.decode_for(&["k", "v"], Pack::Off).is_none());
        assert!(t.decode_for(&[], Pack::On).is_none());
        let reduced = t.decode_for(&["v", "k", "v"], Pack::On).expect("packed cols referenced");
        assert_eq!(reduced.columns.len(), 2);
        assert_eq!(reduced.columns[0].name, "v");
        assert_eq!(reduced.column("k").unwrap().data, t.columns[0].data);
        assert!(reduced.decode_for(&["v", "k"], Pack::On).is_none());
    }
}
