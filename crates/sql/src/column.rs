//! Columnar tables.
//!
//! Tables are stored column-major, as the DPU's SQL engine (and the
//! commercial in-memory columnar database it offloads from) requires.
//! Values are held as `i64` in the engine and materialized into physical
//! DRAM at a declared width for the DMS to stream.

use dpu_mem::PhysMem;

/// One column: a name, a declared storage width, and values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Storage width in bytes (1, 2, 4 or 8) when materialized.
    pub width: u8,
    /// Values (sign-extended to i64 in the engine).
    pub data: Vec<i64>,
}

impl Column {
    /// Creates a 4-byte column.
    pub fn i32(name: &str, data: Vec<i64>) -> Self {
        Column { name: name.to_string(), width: 4, data }
    }

    /// Creates an 8-byte column.
    pub fn i64(name: &str, data: Vec<i64>) -> Self {
        Column { name: name.to_string(), width: 8, data }
    }

    /// Bytes when materialized.
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64 * self.width as u64
    }
}

/// A column-major table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    /// The columns (all equal length).
    pub columns: Vec<Column>,
}

/// Physical placement of a materialized table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableLayout {
    /// DDR base address of each column.
    pub col_addrs: Vec<u64>,
    /// Row count.
    pub rows: u64,
    /// Widths per column.
    pub widths: Vec<u8>,
    /// First address past the table.
    pub end: u64,
}

impl Table {
    /// An empty table.
    pub fn new(columns: Vec<Column>) -> Self {
        if let Some(first) = columns.first() {
            for c in &columns {
                assert_eq!(c.data.len(), first.data.len(), "ragged columns");
            }
        }
        Table { columns }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.data.len())
    }

    /// Finds a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Index of a column by name.
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist (schema errors are bugs).
    pub fn col_index(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("no column {name:?}"))
    }

    /// Total bytes when materialized.
    pub fn bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.bytes()).sum()
    }

    /// Concatenates same-schema tables row-wise (shard/partition merge).
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or schemas (names, widths) differ.
    pub fn concat(tables: &[Table]) -> Table {
        let first = tables.first().expect("concat of zero tables");
        let mut columns: Vec<Column> = first
            .columns
            .iter()
            .map(|c| Column { name: c.name.clone(), width: c.width, data: Vec::new() })
            .collect();
        for t in tables {
            assert_eq!(t.columns.len(), columns.len(), "schema mismatch");
            for (dst, src) in columns.iter_mut().zip(&t.columns) {
                assert_eq!(dst.name, src.name, "schema mismatch");
                assert_eq!(dst.width, src.width, "schema mismatch");
                dst.data.extend_from_slice(&src.data);
            }
        }
        Table::new(columns)
    }

    /// One row as a value vector (column order).
    pub fn row(&self, r: usize) -> Vec<i64> {
        self.columns.iter().map(|c| c.data[r]).collect()
    }

    /// The table with rows sorted lexicographically by all columns — a
    /// canonical form for order-insensitive result comparison.
    pub fn canonicalized(&self) -> Table {
        let mut order: Vec<usize> = (0..self.rows()).collect();
        order.sort_by(|&a, &b| {
            self.columns
                .iter()
                .map(|c| c.data[a].cmp(&c.data[b]))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Table::new(
            self.columns
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    width: c.width,
                    data: order.iter().map(|&r| c.data[r]).collect(),
                })
                .collect(),
        )
    }

    /// Writes the table column-major into DRAM starting at `base`
    /// (column starts aligned to 256 B for clean AXI bursts).
    ///
    /// # Panics
    ///
    /// Panics if the memory region is too small or a value exceeds its
    /// column width.
    pub fn materialize(&self, phys: &mut PhysMem, base: u64) -> TableLayout {
        let mut addr = base;
        let mut col_addrs = Vec::new();
        for col in &self.columns {
            addr = addr.next_multiple_of(256);
            col_addrs.push(addr);
            for (i, &v) in col.data.iter().enumerate() {
                let truncated = match col.width {
                    1 => v as i8 as i64,
                    2 => v as i16 as i64,
                    4 => v as i32 as i64,
                    _ => v,
                };
                assert_eq!(truncated, v, "value {v} overflows {}B column", col.width);
                phys.write_uint(addr + i as u64 * col.width as u64, col.width as usize, v as u64);
            }
            addr += col.bytes();
        }
        TableLayout {
            col_addrs,
            rows: self.rows() as u64,
            widths: self.columns.iter().map(|c| c.width).collect(),
            end: addr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let t =
            Table::new(vec![Column::i32("a", vec![1, 2, 3]), Column::i64("b", vec![10, 20, 30])]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.column("b").unwrap().data[1], 20);
        assert_eq!(t.col_index("a"), 0);
        assert_eq!(t.bytes(), 3 * 4 + 3 * 8);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_rejected() {
        Table::new(vec![Column::i32("a", vec![1]), Column::i32("b", vec![1, 2])]);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn missing_column_panics() {
        Table::new(vec![]).col_index("x");
    }

    #[test]
    fn materialize_roundtrip() {
        let t = Table::new(vec![
            Column::i32("k", vec![5, -6, 7]),
            Column::i64("v", vec![1 << 40, -2, 3]),
        ]);
        let mut phys = PhysMem::new(4096);
        let layout = t.materialize(&mut phys, 100);
        assert_eq!(layout.rows, 3);
        assert!(layout.col_addrs[0].is_multiple_of(256));
        assert_eq!(phys.read_u32(layout.col_addrs[0] + 4) as i32, -6);
        assert_eq!(phys.read_u64(layout.col_addrs[1]) as i64, 1 << 40);
        assert_eq!(phys.read_u64(layout.col_addrs[1] + 8) as i64, -2);
        assert!(layout.end > layout.col_addrs[1]);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflow_detected_at_materialize() {
        let t = Table::new(vec![Column::i32("k", vec![i64::MAX])]);
        let mut phys = PhysMem::new(4096);
        t.materialize(&mut phys, 0);
    }
}
