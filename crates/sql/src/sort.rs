//! Parallel range-partitioned sort.
//!
//! The partitioning literature the paper builds on (reference \[49\] in
//! the paper) sorts by range-partitioning into per-core buckets and
//! sorting each locally — on the DPU, the DMS range engine does the
//! partitioning pass in hardware (Figure 13's range scheme), each dpCore
//! sorts its DMEM-resident bucket, and concatenation is free because the
//! buckets are ordered.

use dpu_dms::PartitionScheme;

use crate::column::Table;

/// Samples `parts - 1` splitter bounds from the data (equi-depth over a
/// sorted sample), suitable for the DMS range engine's 32-bound limit.
///
/// # Panics
///
/// Panics if `parts` is 0 or exceeds 32.
pub fn sample_bounds(values: &[i64], parts: usize) -> Vec<i64> {
    assert!((1..=32).contains(&parts), "range engine supports up to 32 partitions");
    if parts == 1 || values.is_empty() {
        return Vec::new();
    }
    // Deterministic sample: every k-th element, k chosen for ≤1024 samples.
    let step = (values.len() / 1024).max(1);
    let mut sample: Vec<i64> = values.iter().copied().step_by(step).collect();
    sample.sort_unstable();
    let mut bounds = Vec::with_capacity(parts - 1);
    for p in 1..parts {
        let idx = p * sample.len() / parts;
        let b = sample[idx.min(sample.len() - 1)];
        // Bounds must be strictly ascending for the engine; skip dups.
        if bounds.last() != Some(&b) {
            bounds.push(b);
        }
    }
    bounds
}

/// Sorts `table` by `col` ascending via range partitioning across
/// `workers` buckets; returns the row permutation (ties keep original
/// order — the sort is stable).
///
/// # Panics
///
/// Panics if the column is missing or `workers` is outside `1..=32`.
pub fn sort_indices(table: &Table, col: &str, workers: usize) -> Vec<usize> {
    let values = &table.columns[table.col_index(col)].data;
    let bounds = sample_bounds(values, workers);
    if bounds.is_empty() {
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by_key(|&i| (values[i], i));
        return idx;
    }
    let scheme = PartitionScheme::Range { bounds };
    scheme.validate().expect("sampled bounds are valid");
    // Partition rows (the DMS pass), keeping arrival order per bucket.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); scheme.partitions()];
    for (i, &v) in values.iter().enumerate() {
        buckets[scheme.partition_of(v)].push(i);
    }
    // Per-core local sorts (stable), then free concatenation.
    let mut out = Vec::with_capacity(values.len());
    for bucket in &mut buckets {
        bucket.sort_by_key(|&i| (values[i], i));
        out.extend_from_slice(bucket);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn table(vals: Vec<i64>) -> Table {
        Table::new(vec![Column::i64("v", vals)])
    }

    #[test]
    fn produces_a_sorted_permutation() {
        let vals: Vec<i64> = (0..5000).map(|i| (i * 7919) % 1000 - 500).collect();
        let t = table(vals.clone());
        for workers in [1usize, 2, 8, 32] {
            let idx = sort_indices(&t, "v", workers);
            // Permutation property.
            let mut seen = vec![false; vals.len()];
            for &i in &idx {
                assert!(!seen[i], "duplicate index");
                seen[i] = true;
            }
            // Sortedness.
            for w in idx.windows(2) {
                assert!(vals[w[0]] <= vals[w[1]], "workers={workers}");
            }
        }
    }

    #[test]
    fn sort_is_stable() {
        let vals = vec![5, 3, 5, 3, 5];
        let idx = sort_indices(&table(vals), "v", 4);
        assert_eq!(idx, vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn matches_std_sort() {
        let vals: Vec<i64> = (0..2000).map(|i| (i * 31) % 400).collect();
        let t = table(vals.clone());
        let idx = sort_indices(&t, "v", 16);
        let got: Vec<i64> = idx.iter().map(|&i| vals[i]).collect();
        let mut want = vals.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn bounds_are_strictly_ascending_and_roughly_balanced() {
        let vals: Vec<i64> = (0..100_000).map(|i| (i * 2654435761) % 1_000_000).collect();
        let bounds = sample_bounds(&vals, 32);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert!(bounds.len() <= 31);
        let scheme = PartitionScheme::Range { bounds };
        let mut counts = vec![0u64; scheme.partitions()];
        for &v in &vals {
            counts[scheme.partition_of(v)] += 1;
        }
        let avg = vals.len() as u64 / counts.len() as u64;
        for &c in &counts {
            assert!(c < avg * 3, "bucket {c} far above average {avg}");
        }
    }

    #[test]
    fn skewed_data_still_sorts() {
        let mut vals = vec![42i64; 1000];
        vals.extend(0..100);
        let t = table(vals.clone());
        let idx = sort_indices(&t, "v", 8);
        for w in idx.windows(2) {
            assert!(vals[w[0]] <= vals[w[1]]);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(sort_indices(&table(vec![]), "v", 4).is_empty());
        assert_eq!(sort_indices(&table(vec![9]), "v", 4), vec![0]);
    }
}
