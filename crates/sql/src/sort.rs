//! Parallel range-partitioned sort.
//!
//! The partitioning literature the paper builds on (reference \[49\] in
//! the paper) sorts by range-partitioning into per-core buckets and
//! sorting each locally — on the DPU, the DMS range engine does the
//! partitioning pass in hardware (Figure 13's range scheme), each dpCore
//! sorts its DMEM-resident bucket, and concatenation is free because the
//! buckets are ordered.
//!
//! The SWAR arm extracts order-normalized `u64` sort keys in lane
//! batches ([`crate::vector::sort_keys`]) — multi-column keys flatten
//! into contiguous word regions ([`crate::vector::composite_sort_keys`])
//! — so the per-bucket sorts compare words instead of calling per-row
//! multi-column comparators. The normalization preserves order exactly
//! and the `(key, index)` pairs are distinct, so the unstable word sort
//! reproduces the stable scalar permutation bit for bit.

use dpu_dms::PartitionScheme;

use crate::bitvec::BitVec;
use crate::column::{pack, Pack, Table};
use crate::vector::{self, Kernel};

/// Samples `parts - 1` splitter bounds from the data (equi-depth over a
/// sorted sample), suitable for the DMS range engine's 32-bound limit.
///
/// # Panics
///
/// Panics if `parts` is 0 or exceeds 32.
pub fn sample_bounds(values: &[i64], parts: usize) -> Vec<i64> {
    assert!((1..=32).contains(&parts), "range engine supports up to 32 partitions");
    if parts == 1 || values.is_empty() {
        return Vec::new();
    }
    // Deterministic sample: every k-th element, k chosen for ≤1024 samples.
    let step = (values.len() / 1024).max(1);
    let mut sample: Vec<i64> = values.iter().copied().step_by(step).collect();
    sample.sort_unstable();
    let mut bounds = Vec::with_capacity(parts - 1);
    for p in 1..parts {
        let idx = p * sample.len() / parts;
        let b = sample[idx.min(sample.len() - 1)];
        // Bounds must be strictly ascending for the engine; skip dups.
        if bounds.last() != Some(&b) {
            bounds.push(b);
        }
    }
    bounds
}

vector::kernel_entry! {
    /// Sorts `table` by `col` ascending via range partitioning across
    /// `workers` buckets, on the process-wide kernel (`DPU_VECTOR`);
    /// returns the row permutation (ties keep original order — the sort
    /// is stable).
    ///
    /// # Panics
    ///
    /// Panics if the column is missing or `workers` is outside `1..=32`.
    pub fn sort_indices(table: &Table, col: &str, workers: usize) -> Vec<usize>
        => |kernel| sort_indices_packed_with(table, col, workers, None, kernel, pack())
}

/// [`sort_indices`] with an optional selection (unselected rows drop
/// out; the selection is consumed a word at a time) and an explicit
/// kernel choice, for differential tests and benches.
///
/// # Panics
///
/// Panics if the column is missing, `workers` is outside `1..=32`, or
/// the selection length mismatches.
pub fn sort_indices_with(
    table: &Table,
    col: &str,
    workers: usize,
    sel: Option<&BitVec>,
    kernel: Kernel,
) -> Vec<usize> {
    sort_indices_on(&table.columns[table.col_index(col)].data, workers, sel, kernel)
}

/// [`sort_indices_with`] with an explicit pack choice: a packed sort
/// column is unpacked in lane batches into the same bucketing and
/// per-bucket sorts — bit-identical permutations either way.
///
/// # Panics
///
/// Panics if the column is missing, `workers` is outside `1..=32`, or
/// the selection length mismatches.
pub fn sort_indices_packed_with(
    table: &Table,
    col: &str,
    workers: usize,
    sel: Option<&BitVec>,
    kernel: Kernel,
    pack: Pack,
) -> Vec<usize> {
    let values = table.columns[table.col_index(col)].values(pack);
    sort_indices_on(&values, workers, sel, kernel)
}

/// The single-column sort core over a value slice.
fn sort_indices_on(
    values: &[i64],
    workers: usize,
    sel: Option<&BitVec>,
    kernel: Kernel,
) -> Vec<usize> {
    if let Some(bv) = sel {
        assert_eq!(bv.len(), values.len(), "selection length mismatch");
    }
    let buckets = range_buckets(values, workers, sel);
    if kernel.vectorized() {
        // Order-normalized u64 keys, materialized once in lane batches;
        // (key, index) pairs are distinct, so the unstable word sort
        // equals the stable scalar sort.
        let keys = vector::sort_keys(values);
        concat_sorted(buckets, |bucket| bucket.sort_unstable_by_key(|&i| (keys[i], i)))
    } else {
        concat_sorted(buckets, |bucket| bucket.sort_by_key(|&i| (values[i], i)))
    }
}

vector::kernel_entry! {
    /// Sorts `table` by `cols` lexicographically (each ascending) via
    /// range partitioning on the *first* column, on the process-wide
    /// kernel; returns the stable row permutation.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is empty, a column is missing, or `workers` is
    /// outside `1..=32`.
    pub fn sort_indices_multi(table: &Table, cols: &[&str], workers: usize) -> Vec<usize>
        => |kernel| sort_indices_multi_packed_with(table, cols, workers, None, kernel, pack())
}

/// [`sort_indices_multi`] with an optional selection and an explicit
/// kernel. The scalar arm compares rows column by column; the SWAR arm
/// compares flattened order-normalized word regions — identical
/// permutations, because the normalization preserves each column's
/// order and slice comparison is lexicographic.
///
/// # Panics
///
/// Panics if `cols` is empty, a column is missing, `workers` is outside
/// `1..=32`, or the selection length mismatches.
pub fn sort_indices_multi_with(
    table: &Table,
    cols: &[&str],
    workers: usize,
    sel: Option<&BitVec>,
    kernel: Kernel,
) -> Vec<usize> {
    sort_indices_multi_packed_with(table, cols, workers, sel, kernel, Pack::Off)
}

/// [`sort_indices_multi_with`] with an explicit pack choice: packed key
/// columns are unpacked in lane batches, flat ones borrowed — the
/// bucketing and comparators see identical values either way.
///
/// # Panics
///
/// Panics if `cols` is empty, a column is missing, `workers` is outside
/// `1..=32`, or the selection length mismatches.
pub fn sort_indices_multi_packed_with(
    table: &Table,
    cols: &[&str],
    workers: usize,
    sel: Option<&BitVec>,
    kernel: Kernel,
    pack: Pack,
) -> Vec<usize> {
    let owned: Vec<std::borrow::Cow<'_, [i64]>> =
        cols.iter().map(|c| table.columns[table.col_index(c)].values(pack)).collect();
    let data: Vec<&[i64]> = owned.iter().map(|c| c.as_ref()).collect();
    let first = *data.first().expect("multi-column sort needs at least one column");
    if let Some(bv) = sel {
        assert_eq!(bv.len(), first.len(), "selection length mismatch");
    }
    // Bounds come from the first (most significant) column either way,
    // so both arms fill identical buckets.
    let buckets = range_buckets(first, workers, sel);
    if kernel.vectorized() {
        let width = data.len();
        let flat = vector::composite_sort_keys(&data);
        concat_sorted(buckets, |bucket| {
            bucket.sort_unstable_by(|&a, &b| {
                flat[a * width..a * width + width]
                    .cmp(&flat[b * width..b * width + width])
                    .then(a.cmp(&b))
            })
        })
    } else {
        concat_sorted(buckets, |bucket| {
            bucket.sort_by(|&a, &b| {
                data.iter()
                    .map(|c| c[a].cmp(&c[b]))
                    .find(|o| o.is_ne())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
        })
    }
}

/// Range-partitions the selected row ids into per-worker buckets in
/// arrival order (the DMS pass). One bucket when the sampled bounds
/// collapse; the selection is consumed word-driven, not per-row.
fn range_buckets(values: &[i64], workers: usize, sel: Option<&BitVec>) -> Vec<Vec<usize>> {
    let bounds = sample_bounds(values, workers);
    if bounds.is_empty() {
        let idx: Vec<usize> = match sel {
            Some(bv) => bv.iter_set_in(0, values.len()).collect(),
            None => (0..values.len()).collect(),
        };
        return vec![idx];
    }
    let scheme = PartitionScheme::Range { bounds };
    scheme.validate().expect("sampled bounds are valid");
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); scheme.partitions()];
    let mut route = |i: usize| buckets[scheme.partition_of(values[i])].push(i);
    match sel {
        Some(bv) => bv.iter_set_in(0, values.len()).for_each(&mut route),
        None => (0..values.len()).for_each(&mut route),
    }
    buckets
}

/// Sorts each bucket with `sort` and concatenates (free, because the
/// buckets are range-ordered).
fn concat_sorted(
    mut buckets: Vec<Vec<usize>>,
    mut sort: impl FnMut(&mut Vec<usize>),
) -> Vec<usize> {
    let mut out = Vec::with_capacity(buckets.iter().map(Vec::len).sum());
    for bucket in &mut buckets {
        sort(bucket);
        out.extend_from_slice(bucket);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn table(vals: Vec<i64>) -> Table {
        Table::new(vec![Column::i64("v", vals)])
    }

    #[test]
    fn produces_a_sorted_permutation() {
        let vals: Vec<i64> = (0..5000).map(|i| (i * 7919) % 1000 - 500).collect();
        let t = table(vals.clone());
        for workers in [1usize, 2, 8, 32] {
            let idx = sort_indices(&t, "v", workers);
            // Permutation property.
            let mut seen = vec![false; vals.len()];
            for &i in &idx {
                assert!(!seen[i], "duplicate index");
                seen[i] = true;
            }
            // Sortedness.
            for w in idx.windows(2) {
                assert!(vals[w[0]] <= vals[w[1]], "workers={workers}");
            }
        }
    }

    #[test]
    fn sort_is_stable() {
        let vals = vec![5, 3, 5, 3, 5];
        for kernel in [Kernel::Scalar, Kernel::Swar] {
            let idx = sort_indices_with(&table(vals.clone()), "v", 4, None, kernel);
            assert_eq!(idx, vec![1, 3, 0, 2, 4], "kernel={kernel:?}");
        }
    }

    #[test]
    fn matches_std_sort() {
        let vals: Vec<i64> = (0..2000).map(|i| (i * 31) % 400).collect();
        let t = table(vals.clone());
        let idx = sort_indices(&t, "v", 16);
        let got: Vec<i64> = idx.iter().map(|&i| vals[i]).collect();
        let mut want = vals.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn multi_column_sort_orders_lexicographically() {
        let t = Table::new(vec![
            Column::i64("a", vec![2, 1, 2, 1, 1]),
            Column::i64("b", vec![0, 5, -1, 5, 3]),
        ]);
        for kernel in [Kernel::Scalar, Kernel::Swar] {
            let idx = sort_indices_multi_with(&t, &["a", "b"], 4, None, kernel);
            // (1,3)=4, (1,5)=1, (1,5)=3 (stable), (2,-1)=2, (2,0)=0.
            assert_eq!(idx, vec![4, 1, 3, 2, 0], "kernel={kernel:?}");
        }
    }

    #[test]
    fn selection_drops_rows_before_sorting() {
        let vals = vec![9, 2, 7, 2, 5, 1];
        let t = table(vals);
        let sel = BitVec::from_fn(6, |i| i != 1 && i != 4);
        for kernel in [Kernel::Scalar, Kernel::Swar] {
            let idx = sort_indices_with(&t, "v", 3, Some(&sel), kernel);
            assert_eq!(idx, vec![5, 3, 2, 0], "kernel={kernel:?}");
        }
    }

    #[test]
    fn bounds_are_strictly_ascending_and_roughly_balanced() {
        let vals: Vec<i64> = (0..100_000).map(|i| (i * 2654435761) % 1_000_000).collect();
        let bounds = sample_bounds(&vals, 32);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert!(bounds.len() <= 31);
        let scheme = PartitionScheme::Range { bounds };
        let mut counts = vec![0u64; scheme.partitions()];
        for &v in &vals {
            counts[scheme.partition_of(v)] += 1;
        }
        let avg = vals.len() as u64 / counts.len() as u64;
        for &c in &counts {
            assert!(c < avg * 3, "bucket {c} far above average {avg}");
        }
    }

    #[test]
    fn skewed_data_still_sorts() {
        let mut vals = vec![42i64; 1000];
        vals.extend(0..100);
        let t = table(vals.clone());
        let idx = sort_indices(&t, "v", 8);
        for w in idx.windows(2) {
            assert!(vals[w[0]] <= vals[w[1]]);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(sort_indices(&table(vec![]), "v", 4).is_empty());
        assert_eq!(sort_indices(&table(vec![9]), "v", 4), vec![0]);
    }
}
