//! Logical query plans for the planner (ISSUE 6 tentpole).
//!
//! The eight hand-wired TPC-H pipelines in [`tpch`] are re-expressed
//! here as data: a [`JoinGraph`] describes a query declaratively
//! (relations + equi-join edges + a finishing operator), and a
//! [`LogicalPlan`] is one left-deep linearization of that graph that the
//! executor lowers onto the *existing* physical operators —
//! [`FilterSpec`], [`HashJoin`], [`GroupBySpec`], [`top_k`] — so a
//! planner-chosen plan runs the same kernels the hand-wired queries run.
//!
//! Determinism argument: every finishing operator canonicalizes its
//! output — group-by emits key-sorted rows, top-k orders by value
//! descending with content-based ties, scalar sums are exact integer
//! sums — and inner equi-joins produce the same row *multiset* under any
//! join order. A plan's result is therefore a function of the query, not
//! of the linearization the optimizer picked, which is what lets the
//! planner search plan space while keeping the repo's bit-identity house
//! rule (property-tested in `tests/planner_properties.rs`).

use xeon_model::Xeon;

use crate::agg::{GroupByPlan, GroupBySpec};
use crate::bitvec::BitVec;
use crate::column::Table;
use crate::expr::Expr;
use crate::filter::{CompareOp, FilterSpec};
use crate::join::HashJoin;
use crate::plan::{CostAcc, QueryCost};
use crate::topk::top_k;
use crate::tpch::{
    self, join_cost, project_rows, select_rows, TpchDb, AGG_DPU, AGG_XEON, SCAN_DPU, SCAN_XEON,
    XEON_DB_EFFICIENCY,
};

/// The base tables a scan can read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseTable {
    /// The lineitem fact table (sharded by `l_orderkey`).
    Lineitem,
    /// The orders fact table (co-sharded by `o_orderkey`).
    Orders,
    /// Customer dimension (replicated to every node).
    Customer,
    /// Part dimension (replicated).
    Part,
    /// Supplier dimension (replicated).
    Supplier,
    /// Nation dimension (replicated).
    Nation,
}

impl BaseTable {
    /// Every base table the planner knows about.
    pub const ALL: [BaseTable; 6] = [
        BaseTable::Lineitem,
        BaseTable::Orders,
        BaseTable::Customer,
        BaseTable::Part,
        BaseTable::Supplier,
        BaseTable::Nation,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            BaseTable::Lineitem => "lineitem",
            BaseTable::Orders => "orders",
            BaseTable::Customer => "customer",
            BaseTable::Part => "part",
            BaseTable::Supplier => "supplier",
            BaseTable::Nation => "nation",
        }
    }

    /// Resolves to the concrete table of `db`.
    pub fn of(self, db: &TpchDb) -> &Table {
        match self {
            BaseTable::Lineitem => &db.lineitem,
            BaseTable::Orders => &db.orders,
            BaseTable::Customer => &db.customer,
            BaseTable::Part => &db.part,
            BaseTable::Supplier => &db.supplier,
            BaseTable::Nation => &db.nation,
        }
    }

    /// Whether the table is sharded by orderkey (facts) rather than
    /// replicated to every node (dimensions). Replicated tables make
    /// their joins "replica-local": no fabric traffic to place them.
    pub fn is_sharded(self) -> bool {
        matches!(self, BaseTable::Lineitem | BaseTable::Orders)
    }
}

/// A single-column predicate, the unit of predicate pushdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColFilter {
    /// Column name.
    pub col: String,
    /// The comparison.
    pub op: CompareOp,
}

impl ColFilter {
    /// Builds a filter.
    pub fn new(col: &str, op: CompareOp) -> Self {
        ColFilter { col: col.into(), op }
    }

    fn apply(&self, t: &Table) -> BitVec {
        FilterSpec::new(&self.col, self.op).apply(t)
    }
}

/// What a scan node reads: a base table, or a grouped-and-filtered
/// derivation of one (Q18's big-orders subquery).
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// A raw base table.
    Base(BaseTable),
    /// `SELECT keys, aggs FROM table GROUP BY keys HAVING pred` — valid
    /// per shard only when the group key is the sharding key.
    GroupHaving {
        /// Underlying base table.
        table: BaseTable,
        /// The grouping.
        spec: GroupBySpec,
        /// The HAVING predicate over the grouped output.
        having: ColFilter,
    },
}

impl Source {
    /// The base table underneath.
    pub fn table(&self) -> BaseTable {
        match self {
            Source::Base(t) => *t,
            Source::GroupHaving { table, .. } => *table,
        }
    }
}

/// One relation of a [`JoinGraph`] / leaf of a [`LogicalPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// What to read.
    pub source: Source,
    /// Conjunctive filters applied at (or pushed down to) the scan.
    pub filters: Vec<ColFilter>,
    /// Columns the scan streams from DRAM (for costing). Builders pin
    /// these to the hand-wired queries' lists; generic linearizations
    /// derive them from the columns the plan references.
    pub touched: Vec<String>,
}

impl Relation {
    /// A filtered base-table scan touching `cols`.
    pub fn scan(table: BaseTable, filters: Vec<ColFilter>, touched: &[&str]) -> Self {
        Relation {
            source: Source::Base(table),
            filters,
            touched: touched.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// An equi-join edge between two relations of a [`JoinGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Left relation index.
    pub a: usize,
    /// Join column on `a`.
    pub a_col: String,
    /// Right relation index.
    pub b: usize,
    /// Join column on `b`.
    pub b_col: String,
    /// Partition fanout for the hash join.
    pub fanout: usize,
}

/// One join step of a left-deep [`LogicalPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct JoinNode {
    /// Index of the relation joined in at this step.
    pub scan: usize,
    /// If true the accumulated intermediate is the build side and
    /// `scan` probes; otherwise `scan` builds and the intermediate
    /// probes.
    pub build_acc: bool,
    /// Build-side key column.
    pub build_key: String,
    /// Probe-side key column.
    pub probe_key: String,
    /// Build-side columns carried into the output.
    pub build_cols: Vec<String>,
    /// Probe-side columns carried into the output.
    pub probe_cols: Vec<String>,
    /// Partition fanout.
    pub fanout: usize,
}

/// A scalar aggregate: `SUM(expr) [WHERE filter]` over the final
/// intermediate (Q6's revenue, Q14's promo/total pair).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarSum {
    /// Output name.
    pub name: String,
    /// The summed expression.
    pub expr: Expr,
    /// Optional row predicate.
    pub filter: Option<ColFilter>,
}

/// The finishing operator of a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Finish {
    /// Group-by; output is key-sorted (canonical).
    Agg(GroupBySpec),
    /// Group-by followed by top-k on an aggregate column.
    AggTopK {
        /// The grouping.
        spec: GroupBySpec,
        /// Ranked column.
        value: String,
        /// Keep this many rows.
        k: usize,
    },
    /// Top-k directly over the joined rows, optionally after a canonical
    /// stable sort (Q18 sorts by orderkey so ties are content-based).
    TopK {
        /// Ranked column.
        value: String,
        /// Keep this many rows.
        k: usize,
        /// Canonical pre-sort column.
        sort_by: Option<String>,
    },
    /// One or more scalar sums.
    ScalarSums(Vec<ScalarSum>),
}

/// Result of executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalOutput {
    /// A result table.
    Table(Table),
    /// Scalar sums, in [`Finish::ScalarSums`] order.
    Scalars(Vec<i64>),
}

impl LogicalOutput {
    /// The table, panicking on scalars.
    pub fn table(&self) -> &Table {
        match self {
            LogicalOutput::Table(t) => t,
            LogicalOutput::Scalars(_) => panic!("scalar output"),
        }
    }
}

/// Per-operator actual row counts, filled by
/// [`LogicalPlan::execute_costed`] and rendered by the planner's
/// EXPLAIN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRows {
    /// Stable operator label.
    pub label: String,
    /// Rows the operator produced.
    pub rows: usize,
}

/// A declarative query: relations, equi-join edges, and the finish.
/// The optimizer enumerates linearizations of this graph; the default
/// order reproduces the hand-wired pipeline exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinGraph {
    /// Query name (stable, used by EXPLAIN).
    pub name: &'static str,
    /// The relations.
    pub relations: Vec<Relation>,
    /// Equi-join edges (acyclic for all eight queries).
    pub edges: Vec<JoinEdge>,
    /// A residual equality filter between two carried columns, applied
    /// before the finish (Q5's same-nation predicate).
    pub col_eq: Option<(String, String)>,
    /// The finishing operator.
    pub finish: Finish,
}

/// A left-deep executable plan over the existing physical operators.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    /// Query name.
    pub name: String,
    /// The relations (leaf scans).
    pub scans: Vec<Relation>,
    /// Index of the relation seeding the accumulator.
    pub first: usize,
    /// Join steps, applied in order.
    pub joins: Vec<JoinNode>,
    /// Residual column-equality filter.
    pub col_eq: Option<(String, String)>,
    /// Residual conjunctive predicates evaluated on the joined
    /// intermediate, before `col_eq` and the finish. The optimizer's
    /// pushdown pass empties this list by moving each predicate to its
    /// source scan; both forms are bit-identical (an inner equi-join
    /// commutes with a one-sided filter and the hash join preserves the
    /// relative order of surviving rows).
    pub post_filters: Vec<ColFilter>,
    /// The finishing operator.
    pub finish: Finish,
}

impl LogicalPlan {
    /// Executes the plan, ignoring cost.
    pub fn execute(&self, db: &TpchDb) -> LogicalOutput {
        self.execute_costed(db, &Xeon::new(), 1).0
    }

    /// Executes the plan functionally while costing it with the same
    /// per-operator constants as the hand-wired queries, and records
    /// per-operator actual row counts for EXPLAIN.
    pub fn execute_costed(
        &self,
        db: &TpchDb,
        xeon: &Xeon,
        scale: u64,
    ) -> (LogicalOutput, QueryCost, Vec<OpRows>) {
        let mut acc = CostAcc::with_scale(scale);
        let mut trace = Vec::new();
        let mut cur = self.eval_scan(self.first, db, &mut acc, &mut trace);
        for j in &self.joins {
            let other = self.eval_scan(j.scan, db, &mut acc, &mut trace);
            let (build, probe) = if j.build_acc { (&cur, &other) } else { (&other, &cur) };
            let join = HashJoin {
                build_key: j.build_key.clone(),
                probe_key: j.probe_key.clone(),
                build_cols: j.build_cols.clone(),
                probe_cols: j.probe_cols.clone(),
            };
            let (out, _) = join.execute(build, probe, j.fanout as u64);
            // The partition-rounds model keys off the build side; the
            // shipped key bytes follow the probe side's base column
            // (pre-filter, matching the hand-wired accounting).
            let probe_base_rows = if j.build_acc {
                self.scans[j.scan].source.table().of(db).rows()
            } else {
                probe.rows()
            };
            join_cost(
                &mut acc,
                build.rows() as u64,
                probe.rows() as u64,
                4 * probe_base_rows as u64,
            );
            trace.push(OpRows {
                label: format!("join {}={} fanout={}", j.build_key, j.probe_key, j.fanout),
                rows: out.rows(),
            });
            cur = out;
        }
        if !self.post_filters.is_empty() {
            let mut keep = self.post_filters[0].apply(&cur);
            for f in &self.post_filters[1..] {
                keep = keep.and(&f.apply(&cur));
            }
            acc.compute(cur.rows() as u64, SCAN_DPU, SCAN_XEON);
            cur = select_rows(&cur, &keep);
            trace.push(OpRows { label: "filter residual".into(), rows: cur.rows() });
        }
        let sel = self.col_eq.as_ref().map(|(a, b)| {
            let ca = &cur.columns[cur.col_index(a)].data;
            let cb = &cur.columns[cur.col_index(b)].data;
            BitVec::from_fn(cur.rows(), |r| ca[r] == cb[r])
        });
        let out = match &self.finish {
            Finish::Agg(spec) => {
                acc.compute(cur.rows() as u64, AGG_DPU, AGG_XEON);
                let t = spec.execute(&cur, sel.as_ref());
                trace.push(OpRows { label: agg_label(spec), rows: t.rows() });
                LogicalOutput::Table(t)
            }
            Finish::AggTopK { spec, value, k } => {
                acc.compute(cur.rows() as u64, AGG_DPU, AGG_XEON);
                let grouped = spec.execute(&cur, sel.as_ref());
                trace.push(OpRows { label: agg_label(spec), rows: grouped.rows() });
                let top = top_k(&grouped, value, (*k).min(grouped.rows().max(1)), 32);
                let t = project_rows(&grouped, &top);
                trace.push(OpRows { label: format!("topk {value} k={k}"), rows: t.rows() });
                LogicalOutput::Table(t)
            }
            Finish::TopK { value, k, sort_by } => {
                let mut jo = cur;
                if let Some(key) = sort_by {
                    let mut order: Vec<usize> = (0..jo.rows()).collect();
                    order.sort_by_key(|&r| jo.columns[jo.col_index(key)].data[r]);
                    jo = project_rows(&jo, &order);
                }
                let top = top_k(&jo, value, (*k).min(jo.rows().max(1)), 32);
                let t = project_rows(&jo, &top);
                trace.push(OpRows { label: format!("topk {value} k={k}"), rows: t.rows() });
                LogicalOutput::Table(t)
            }
            Finish::ScalarSums(sums) => {
                acc.compute(cur.rows() as u64, 3.0 * sums.len() as f64, 1.5 * sums.len() as f64);
                let mut vals = Vec::with_capacity(sums.len());
                for s in sums {
                    let v = s.expr.eval(&cur);
                    let keep = s.filter.as_ref().map(|f| f.apply(&cur));
                    let total: i64 = v
                        .iter()
                        .enumerate()
                        .filter(|(r, _)| keep.as_ref().is_none_or(|b| b.get(*r)))
                        .map(|(_, &x)| x)
                        .sum();
                    vals.push(total);
                }
                trace.push(OpRows { label: "scalar sums".into(), rows: sums.len() });
                LogicalOutput::Scalars(vals)
            }
        };
        let mut cost = acc.finish(xeon);
        cost.xeon.seconds /= XEON_DB_EFFICIENCY;
        (out, cost, trace)
    }

    /// Evaluates one leaf: filters, materializes, costs the stream.
    fn eval_scan(
        &self,
        i: usize,
        db: &TpchDb,
        acc: &mut CostAcc,
        trace: &mut Vec<OpRows>,
    ) -> Table {
        let rel = &self.scans[i];
        let base = rel.source.table().of(db);
        // Scans stream *resident* bytes: packed columns move their
        // FOR/bit-packed words through the memory system, not the flat
        // width. Knob-independent (packing is unconditional at load).
        let touched: u64 = rel
            .touched
            .iter()
            .map(|n| base.column(n).expect("touched column").resident_bytes())
            .sum();
        acc.stream_both(touched);
        acc.compute(base.rows() as u64, SCAN_DPU, SCAN_XEON);
        let staged = match &rel.source {
            Source::Base(_) => base.clone(),
            Source::GroupHaving { spec, having, .. } => {
                // The big group-by streams extra partition rounds at the
                // full-scale NDV, like the hand-wired Q18 accounting.
                let grouped = spec.execute(base, None);
                let plan = GroupByPlan::plan((grouped.rows() as u64 * acc.scale()).max(1), 16);
                acc.stream(
                    touched * (plan.dpu_bytes_factor() - 1),
                    touched * (plan.xeon_bytes_factor() - 1),
                );
                acc.compute(base.rows() as u64, AGG_DPU, AGG_XEON);
                trace.push(OpRows {
                    label: format!("{} {}", rel.source.table().name(), agg_label(spec)),
                    rows: grouped.rows(),
                });
                let keep = having.apply(&grouped);
                select_rows(&grouped, &keep)
            }
        };
        let out = if rel.filters.is_empty() {
            staged
        } else {
            let mut sel = rel.filters[0].apply(&staged);
            for f in &rel.filters[1..] {
                sel = sel.and(&f.apply(&staged));
            }
            select_rows(&staged, &sel)
        };
        trace.push(OpRows {
            label: format!(
                "scan {}{}",
                rel.source.table().name(),
                if rel.filters.is_empty() { "" } else { " filtered" }
            ),
            rows: out.rows(),
        });
        out
    }
}

fn agg_label(spec: &GroupBySpec) -> String {
    if spec.group_cols.is_empty() {
        "agg".into()
    } else {
        format!("agg by {}", spec.group_cols.join(","))
    }
}

impl JoinGraph {
    /// The default linearization: relation 0 seeds the accumulator and
    /// edges fold in declaration order, with the build side chosen per
    /// edge by `build_rel_est` (estimated rows per relation; the smaller
    /// side builds, ties building the incoming relation). Passing the
    /// declaration-order estimates of the hand-wired plans reproduces
    /// them; the optimizer passes statistics-based estimates and
    /// permuted orders.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a connected permutation of the
    /// relations (every prefix must be joined to the next relation by
    /// some edge).
    pub fn linearize(&self, order: &[usize], est: &[f64]) -> LogicalPlan {
        assert_eq!(order.len(), self.relations.len(), "order must cover all relations");
        let mut joined: Vec<usize> = vec![order[0]];
        let mut joins = Vec::new();
        // Columns each relation must still provide downstream.
        let needed = self.needed_columns();
        // Running estimate of the accumulator's cardinality.
        let mut acc_est = est[order[0]];
        for &r in &order[1..] {
            let edge = self
                .edges
                .iter()
                .find(|e| {
                    (e.b == r && joined.contains(&e.a)) || (e.a == r && joined.contains(&e.b))
                })
                .unwrap_or_else(|| panic!("relation {r} not connected to prefix"));
            let (acc_col, scan_col) =
                if edge.b == r { (&edge.a_col, &edge.b_col) } else { (&edge.b_col, &edge.a_col) };
            // Columns the accumulated side must carry forward: needed by
            // the finish or by a later join against a not-yet-joined
            // relation.
            let carry_acc = self.carried_columns(&joined, r, &needed);
            let carry_scan = self.relation_columns(r, &needed);
            let build_acc = acc_est <= est[r];
            let (build_key, probe_key, build_cols, probe_cols) = if build_acc {
                (acc_col.clone(), scan_col.clone(), carry_acc, carry_scan)
            } else {
                (scan_col.clone(), acc_col.clone(), carry_scan, carry_acc)
            };
            joins.push(JoinNode {
                scan: r,
                build_acc,
                build_key,
                probe_key,
                build_cols,
                probe_cols,
                fanout: edge.fanout,
            });
            joined.push(r);
            // Textbook equi-join estimate: |A|·|B| / max(|A|, |B|) — the
            // optimizer refines this with NDV sketches before calling.
            acc_est = (acc_est * est[r] / acc_est.max(est[r]).max(1.0)).max(1.0);
        }
        LogicalPlan {
            name: self.name.to_string(),
            scans: self.relations.clone(),
            first: order[0],
            joins,
            col_eq: self.col_eq.clone(),
            post_filters: vec![],
            finish: self.finish.clone(),
        }
    }

    /// Columns the finish (and residual filter) consumes.
    pub fn needed_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = Vec::new();
        let mut push = |c: &str| {
            if !cols.iter().any(|x| x == c) {
                cols.push(c.to_string());
            }
        };
        match &self.finish {
            Finish::Agg(spec) | Finish::AggTopK { spec, .. } => {
                for c in &spec.group_cols {
                    push(c);
                }
                for (_, f) in &spec.aggs {
                    for c in agg_inputs(f) {
                        push(&c);
                    }
                }
            }
            Finish::TopK { value, sort_by, .. } => {
                push(value);
                if let Some(s) = sort_by {
                    push(s);
                }
            }
            Finish::ScalarSums(sums) => {
                for s in sums {
                    for c in expr_columns(&s.expr) {
                        push(&c);
                    }
                    if let Some(f) = &s.filter {
                        push(&f.col);
                    }
                }
            }
        }
        if let Some((a, b)) = &self.col_eq {
            push(a);
            push(b);
        }
        cols
    }

    /// Columns of relation `r` that are needed downstream: by the finish
    /// or as a key of a later edge.
    fn relation_columns(&self, r: usize, needed: &[String]) -> Vec<String> {
        let rel_cols = self.columns_of(r);
        let mut out: Vec<String> = Vec::new();
        for c in &rel_cols {
            let used_by_finish = needed.contains(c);
            let used_by_edge = self
                .edges
                .iter()
                .any(|e| (e.a == r && &e.a_col == c) || (e.b == r && &e.b_col == c));
            if (used_by_finish || used_by_edge) && !out.contains(c) {
                out.push(c.clone());
            }
        }
        out
    }

    /// Columns the accumulated prefix must carry into the next join:
    /// everything a member relation provides that the finish needs or a
    /// future edge (to a relation outside the prefix ∪ {incoming}) keys
    /// on.
    fn carried_columns(&self, joined: &[usize], incoming: usize, needed: &[String]) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for &m in joined {
            for c in self.columns_of(m) {
                let by_finish = needed.contains(&c);
                let by_future = self.edges.iter().any(|e| {
                    let (mine, other) = if e.a == m {
                        (&e.a_col, e.b)
                    } else if e.b == m {
                        (&e.b_col, e.a)
                    } else {
                        return false;
                    };
                    mine == &c && other != incoming && !joined.contains(&other)
                });
                if (by_finish || by_future) && !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// The column names relation `r` can provide (its touched set plus,
    /// for derived sources, the grouped outputs).
    fn columns_of(&self, r: usize) -> Vec<String> {
        let rel = &self.relations[r];
        match &rel.source {
            Source::Base(_) => rel.touched.clone(),
            Source::GroupHaving { spec, .. } => {
                let mut cols = spec.group_cols.clone();
                cols.extend(spec.aggs.iter().map(|(n, _)| n.clone()));
                cols
            }
        }
    }
}

fn agg_inputs(f: &crate::agg::AggFunc) -> Vec<String> {
    use crate::agg::AggFunc;
    match f {
        AggFunc::Count => vec![],
        AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) => vec![c.clone()],
        AggFunc::SumProduct(a, b) => vec![a.clone(), b.clone()],
    }
}

fn expr_columns(e: &Expr) -> Vec<String> {
    match e {
        Expr::Col(c) => vec![c.clone()],
        Expr::Lit(_) => vec![],
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
            let mut v = expr_columns(a);
            v.extend(expr_columns(b));
            v
        }
        Expr::Clamp(a, _, _) => expr_columns(a),
    }
}

// ---------------------------------------------------------------------
// Default plans: each builder reproduces the hand-wired tpch pipeline
// operator for operator (same build/probe sides, same carried columns,
// same fanouts), so the default plan is bit-identical by construction.
// ---------------------------------------------------------------------

use crate::agg::AggFunc;

fn spec(group: &[&str], aggs: Vec<(&str, AggFunc)>) -> GroupBySpec {
    GroupBySpec {
        group_cols: group.iter().map(|s| s.to_string()).collect(),
        aggs: aggs.into_iter().map(|(n, f)| (n.to_string(), f)).collect(),
    }
}

fn strs(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

/// Q1: scan + 2-column group-by.
pub fn q1_plan() -> LogicalPlan {
    LogicalPlan {
        name: "q1".into(),
        scans: vec![Relation::scan(
            BaseTable::Lineitem,
            vec![ColFilter::new("l_shipdate", CompareOp::Le(tpch::ORDER_DAYS - 90))],
            &[
                "l_shipdate",
                "l_returnflag",
                "l_linestatus",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
            ],
        )],
        first: 0,
        joins: vec![],
        col_eq: None,
        post_filters: vec![],
        finish: Finish::Agg(spec(
            &["l_returnflag", "l_linestatus"],
            vec![
                ("sum_qty", AggFunc::Sum("l_quantity".into())),
                ("sum_base_price", AggFunc::Sum("l_extendedprice".into())),
                (
                    "sum_disc_price",
                    AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()),
                ),
                ("count_order", AggFunc::Count),
            ],
        )),
    }
}

/// Q3: customer ⋈ orders ⋈ lineitem, group, top-10.
pub fn q3_graph() -> JoinGraph {
    JoinGraph {
        name: "q3",
        relations: vec![
            Relation::scan(
                BaseTable::Customer,
                vec![ColFilter::new("c_mktsegment", CompareOp::Eq(1))],
                &["c_custkey", "c_mktsegment"],
            ),
            Relation::scan(
                BaseTable::Orders,
                vec![ColFilter::new("o_orderdate", CompareOp::Lt(tpch::D_1995))],
                &["o_orderkey", "o_custkey", "o_orderdate"],
            ),
            Relation::scan(
                BaseTable::Lineitem,
                vec![ColFilter::new("l_shipdate", CompareOp::Gt(tpch::D_1995))],
                &["l_orderkey", "l_shipdate", "l_extendedprice", "l_discount"],
            ),
        ],
        edges: vec![
            JoinEdge {
                a: 0,
                a_col: "c_custkey".into(),
                b: 1,
                b_col: "o_custkey".into(),
                fanout: 32,
            },
            JoinEdge {
                a: 1,
                a_col: "o_orderkey".into(),
                b: 2,
                b_col: "l_orderkey".into(),
                fanout: 32,
            },
        ],
        col_eq: None,
        finish: Finish::AggTopK {
            spec: spec(
                &["l_orderkey", "o_orderdate"],
                vec![(
                    "revenue",
                    AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()),
                )],
            ),
            value: "revenue".into(),
            k: 10,
        },
    }
}

/// Q3's hand-wired linearization.
pub fn q3_plan() -> LogicalPlan {
    LogicalPlan {
        name: "q3".into(),
        scans: q3_graph().relations,
        first: 0,
        joins: vec![
            JoinNode {
                scan: 1,
                build_acc: true,
                build_key: "c_custkey".into(),
                probe_key: "o_custkey".into(),
                build_cols: vec![],
                probe_cols: strs(&["o_orderkey", "o_orderdate"]),
                fanout: 32,
            },
            JoinNode {
                scan: 2,
                build_acc: true,
                build_key: "o_orderkey".into(),
                probe_key: "l_orderkey".into(),
                build_cols: strs(&["o_orderdate"]),
                probe_cols: strs(&["l_orderkey", "l_extendedprice", "l_discount"]),
                fanout: 32,
            },
        ],
        col_eq: None,
        post_filters: vec![],
        finish: q3_graph().finish,
    }
}

/// Q5: nation ⋈ customer ⋈ orders ⋈ lineitem ⋈ supplier with the
/// same-nation residual.
pub fn q5_graph() -> JoinGraph {
    JoinGraph {
        name: "q5",
        relations: vec![
            Relation::scan(
                BaseTable::Nation,
                vec![ColFilter::new("n_regionkey", CompareOp::Eq(0))],
                &["n_nationkey", "n_regionkey"],
            ),
            Relation::scan(BaseTable::Customer, vec![], &["c_custkey", "c_nationkey"]),
            Relation::scan(
                BaseTable::Orders,
                vec![ColFilter::new(
                    "o_orderdate",
                    CompareOp::Between(tpch::D_1995, tpch::D_1995 + 365),
                )],
                &["o_orderkey", "o_custkey", "o_orderdate"],
            ),
            Relation::scan(
                BaseTable::Lineitem,
                vec![],
                &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
            ),
            Relation::scan(BaseTable::Supplier, vec![], &["s_suppkey", "s_nationkey"]),
        ],
        edges: vec![
            JoinEdge {
                a: 0,
                a_col: "n_nationkey".into(),
                b: 1,
                b_col: "c_nationkey".into(),
                fanout: 8,
            },
            JoinEdge {
                a: 1,
                a_col: "c_custkey".into(),
                b: 2,
                b_col: "o_custkey".into(),
                fanout: 32,
            },
            JoinEdge {
                a: 2,
                a_col: "o_orderkey".into(),
                b: 3,
                b_col: "l_orderkey".into(),
                fanout: 32,
            },
            JoinEdge {
                a: 3,
                a_col: "l_suppkey".into(),
                b: 4,
                b_col: "s_suppkey".into(),
                fanout: 8,
            },
        ],
        col_eq: Some(("s_nationkey".into(), "n_nationkey".into())),
        finish: Finish::Agg(spec(
            &["n_nationkey"],
            vec![("revenue", AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()))],
        )),
    }
}

/// Q5's hand-wired linearization.
pub fn q5_plan() -> LogicalPlan {
    LogicalPlan {
        name: "q5".into(),
        scans: q5_graph().relations,
        first: 0,
        joins: vec![
            JoinNode {
                scan: 1,
                build_acc: true,
                build_key: "n_nationkey".into(),
                probe_key: "c_nationkey".into(),
                build_cols: strs(&["n_nationkey"]),
                probe_cols: strs(&["c_custkey"]),
                fanout: 8,
            },
            JoinNode {
                scan: 2,
                build_acc: true,
                build_key: "c_custkey".into(),
                probe_key: "o_custkey".into(),
                build_cols: strs(&["n_nationkey"]),
                probe_cols: strs(&["o_orderkey"]),
                fanout: 32,
            },
            JoinNode {
                scan: 3,
                build_acc: true,
                build_key: "o_orderkey".into(),
                probe_key: "l_orderkey".into(),
                build_cols: strs(&["n_nationkey"]),
                probe_cols: strs(&["l_suppkey", "l_extendedprice", "l_discount"]),
                fanout: 32,
            },
            JoinNode {
                scan: 4,
                build_acc: false,
                build_key: "s_suppkey".into(),
                probe_key: "l_suppkey".into(),
                build_cols: strs(&["s_nationkey"]),
                probe_cols: strs(&["n_nationkey", "l_extendedprice", "l_discount"]),
                fanout: 8,
            },
        ],
        col_eq: Some(("s_nationkey".into(), "n_nationkey".into())),
        post_filters: vec![],
        finish: q5_graph().finish,
    }
}

/// Q6: pure scan-filter-sum.
pub fn q6_plan() -> LogicalPlan {
    LogicalPlan {
        name: "q6".into(),
        scans: vec![Relation::scan(
            BaseTable::Lineitem,
            vec![
                ColFilter::new("l_shipdate", CompareOp::Between(tpch::D_1995, tpch::D_1995 + 364)),
                ColFilter::new("l_discount", CompareOp::Between(5, 7)),
                ColFilter::new("l_quantity", CompareOp::Lt(24)),
            ],
            &["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"],
        )],
        first: 0,
        joins: vec![],
        col_eq: None,
        post_filters: vec![],
        finish: Finish::ScalarSums(vec![ScalarSum {
            name: "revenue".into(),
            expr: Expr::Mul(
                Box::new(Expr::col("l_extendedprice")),
                Box::new(Expr::col("l_discount")),
            ),
            filter: None,
        }]),
    }
}

/// Q10: orders ⋈ lineitem, group by custkey, top-20 — the query with a
/// genuine distributed placement choice (its group key is not the
/// sharding key).
pub fn q10_graph() -> JoinGraph {
    JoinGraph {
        name: "q10",
        relations: vec![
            Relation::scan(
                BaseTable::Orders,
                vec![ColFilter::new(
                    "o_orderdate",
                    CompareOp::Between(tpch::D_1995, tpch::D_1995 + 90),
                )],
                &["o_orderkey", "o_custkey", "o_orderdate"],
            ),
            Relation::scan(
                BaseTable::Lineitem,
                vec![ColFilter::new("l_returnflag", CompareOp::Eq(2))],
                &["l_orderkey", "l_returnflag", "l_extendedprice", "l_discount"],
            ),
        ],
        edges: vec![JoinEdge {
            a: 0,
            a_col: "o_orderkey".into(),
            b: 1,
            b_col: "l_orderkey".into(),
            fanout: 32,
        }],
        col_eq: None,
        finish: Finish::AggTopK {
            spec: spec(
                &["o_custkey"],
                vec![(
                    "revenue",
                    AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()),
                )],
            ),
            value: "revenue".into(),
            k: 20,
        },
    }
}

/// Q10's hand-wired linearization.
pub fn q10_plan() -> LogicalPlan {
    LogicalPlan {
        name: "q10".into(),
        scans: q10_graph().relations,
        first: 0,
        joins: vec![JoinNode {
            scan: 1,
            build_acc: true,
            build_key: "o_orderkey".into(),
            probe_key: "l_orderkey".into(),
            build_cols: strs(&["o_custkey"]),
            probe_cols: strs(&["l_extendedprice", "l_discount"]),
            fanout: 32,
        }],
        col_eq: None,
        post_filters: vec![],
        finish: q10_graph().finish,
    }
}

/// Q10's local phase for shuffle plans: stop at the partial group-by.
pub fn q10_partial_plan() -> LogicalPlan {
    let mut p = q10_plan();
    let Finish::AggTopK { spec, .. } = p.finish else { unreachable!() };
    p.finish = Finish::Agg(spec);
    p
}

/// Q12: orders ⋈ lineitem, group by shipmode.
pub fn q12_plan() -> LogicalPlan {
    LogicalPlan {
        name: "q12".into(),
        scans: vec![
            Relation::scan(
                BaseTable::Lineitem,
                vec![
                    ColFilter::new("l_shipmode", CompareOp::Between(2, 3)),
                    ColFilter::new(
                        "l_receiptdate",
                        CompareOp::Between(tpch::D_1995, tpch::D_1995 + 364),
                    ),
                ],
                &["l_orderkey", "l_shipmode", "l_receiptdate"],
            ),
            Relation::scan(BaseTable::Orders, vec![], &["o_orderkey"]),
        ],
        first: 0,
        joins: vec![JoinNode {
            scan: 1,
            build_acc: false,
            build_key: "o_orderkey".into(),
            probe_key: "l_orderkey".into(),
            build_cols: vec![],
            probe_cols: strs(&["l_shipmode"]),
            fanout: 32,
        }],
        col_eq: None,
        post_filters: vec![],
        finish: Finish::Agg(spec(&["l_shipmode"], vec![("line_count", AggFunc::Count)])),
    }
}

/// Q14: part ⋈ lineitem with the promo/total scalar pair.
pub fn q14_plan() -> LogicalPlan {
    let rev = Expr::Mul(
        Box::new(Expr::col("l_extendedprice")),
        Box::new(Expr::Sub(Box::new(Expr::lit(100)), Box::new(Expr::col("l_discount")))),
    );
    LogicalPlan {
        name: "q14".into(),
        scans: vec![
            Relation::scan(
                BaseTable::Lineitem,
                vec![ColFilter::new(
                    "l_shipdate",
                    CompareOp::Between(tpch::D_1995, tpch::D_1995 + 29),
                )],
                &["l_partkey", "l_shipdate", "l_extendedprice", "l_discount"],
            ),
            Relation::scan(BaseTable::Part, vec![], &["p_partkey", "p_type"]),
        ],
        first: 0,
        joins: vec![JoinNode {
            scan: 1,
            build_acc: false,
            build_key: "p_partkey".into(),
            probe_key: "l_partkey".into(),
            build_cols: strs(&["p_type"]),
            probe_cols: strs(&["l_extendedprice", "l_discount"]),
            fanout: 32,
        }],
        col_eq: None,
        post_filters: vec![],
        finish: Finish::ScalarSums(vec![
            ScalarSum {
                name: "promo".into(),
                expr: rev.clone(),
                filter: Some(ColFilter::new("p_type", CompareOp::Lt(30))),
            },
            ScalarSum { name: "total".into(), expr: rev, filter: None },
        ]),
    }
}

/// Q18: big-orders (group-having) ⋈ orders, canonical sort, top-100.
pub fn q18_plan() -> LogicalPlan {
    LogicalPlan {
        name: "q18".into(),
        scans: vec![
            Relation {
                source: Source::GroupHaving {
                    table: BaseTable::Lineitem,
                    spec: spec(
                        &["l_orderkey"],
                        vec![("sum_qty", AggFunc::Sum("l_quantity".into()))],
                    ),
                    having: ColFilter::new("sum_qty", CompareOp::Gt(180)),
                },
                filters: vec![],
                touched: strs(&["l_orderkey", "l_quantity"]),
            },
            Relation::scan(BaseTable::Orders, vec![], &["o_orderkey", "o_custkey", "o_totalprice"]),
        ],
        first: 0,
        joins: vec![JoinNode {
            scan: 1,
            build_acc: true,
            build_key: "l_orderkey".into(),
            probe_key: "o_orderkey".into(),
            build_cols: strs(&["sum_qty"]),
            probe_cols: strs(&["o_orderkey", "o_custkey", "o_totalprice"]),
            fanout: 32,
        }],
        col_eq: None,
        post_filters: vec![],
        finish: Finish::TopK {
            value: "o_totalprice".into(),
            k: 100,
            sort_by: Some("o_orderkey".into()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::generate;

    fn db() -> TpchDb {
        generate(600, 11)
    }

    #[test]
    fn default_plans_match_hand_wired_queries() {
        let db = db();
        let xeon = Xeon::new();
        assert_eq!(q1_plan().execute(&db).table(), &tpch::q1(&db, &xeon, 1).0);
        assert_eq!(q3_plan().execute(&db).table(), &tpch::q3(&db, &xeon, 1).0);
        assert_eq!(q5_plan().execute(&db).table(), &tpch::q5(&db, &xeon, 1).0);
        assert_eq!(q10_plan().execute(&db).table(), &tpch::q10(&db, &xeon, 1).0);
        assert_eq!(q12_plan().execute(&db).table(), &tpch::q12(&db, &xeon, 1).0);
        assert_eq!(q18_plan().execute(&db).table(), &tpch::q18(&db, &xeon, 1).0);
        let LogicalOutput::Scalars(q6) = q6_plan().execute(&db) else { panic!() };
        assert_eq!(q6[0], tpch::q6(&db, &xeon, 1).0);
        let LogicalOutput::Scalars(q14) = q14_plan().execute(&db) else { panic!() };
        let ((promo, total), _) = tpch::q14(&db, &xeon, 1);
        assert_eq!((q14[0], q14[1]), (promo, total));
    }

    #[test]
    fn reordered_joins_change_nothing_after_canonicalization() {
        let db = db();
        // Q3 in every connected order, with build sides flipped by
        // estimates: output must be identical to the hand-wired plan.
        let g = q3_graph();
        let base = q3_plan().execute(&db);
        for order in [[0usize, 1, 2], [1, 0, 2], [1, 2, 0], [2, 1, 0]] {
            for est in [[1.0, 2.0, 3.0], [3.0, 2.0, 1.0], [1.0, 1.0, 1.0]] {
                let p = g.linearize(&order, &est);
                assert_eq!(p.execute(&db), base, "order {order:?} est {est:?}");
            }
        }
        // Q5's five relations, a couple of hand-picked connected orders.
        let g5 = q5_graph();
        let base5 = q5_plan().execute(&db);
        for order in [[0usize, 1, 2, 3, 4], [2, 1, 0, 3, 4], [3, 2, 1, 0, 4], [4, 3, 2, 1, 0]] {
            let est: Vec<f64> = (0..5).map(|i| (i + 1) as f64).collect();
            let p = g5.linearize(&order, &est);
            assert_eq!(p.execute(&db), base5, "order {order:?}");
        }
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn disconnected_order_is_rejected() {
        // Customer (0) and lineitem (2) share no edge.
        q3_graph().linearize(&[0, 2, 1], &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn q10_partial_plus_merge_matches_full_plan() {
        let db = db();
        let partial = q10_partial_plan().execute(&db);
        let Finish::AggTopK { spec, value, k } = q10_plan().finish else { panic!() };
        let grouped = partial.table();
        let top = top_k(grouped, &value, k.min(grouped.rows().max(1)), 32);
        let finished = project_rows(grouped, &top);
        assert_eq!(&finished, q10_plan().execute(&db).table());
        let _ = spec;
    }

    #[test]
    fn costed_execution_reports_positive_cost_and_trace() {
        let db = db();
        let xeon = Xeon::new();
        for plan in [
            q1_plan(),
            q3_plan(),
            q5_plan(),
            q6_plan(),
            q10_plan(),
            q12_plan(),
            q14_plan(),
            q18_plan(),
        ] {
            let (_, cost, trace) = plan.execute_costed(&db, &xeon, 10_000);
            assert!(cost.dpu.seconds > 0.0, "{}: zero dpu cost", plan.name);
            assert!(cost.xeon.seconds > 0.0, "{}: zero xeon cost", plan.name);
            assert!(!trace.is_empty(), "{}: empty trace", plan.name);
            assert!(
                trace.iter().any(|t| t.label.starts_with("scan")),
                "{}: no scan in trace",
                plan.name
            );
        }
    }
}
