//! Top-k selection.
//!
//! Each dpCore maintains a k-element heap over its chunk of the input;
//! the per-core heaps are merged at the end (the merge touches only
//! `cores × k` rows, so its cost is negligible — the same argument as the
//! group-by merge operator in §5.3).

use std::collections::BinaryHeap;

use crate::column::Table;

/// Selects the top `k` row indices of `table` by `order_col` descending
/// (ties broken by ascending row index, making results deterministic).
///
/// `workers` models the per-core decomposition; the result is identical
/// for any worker count.
///
/// # Panics
///
/// Panics if the column is missing, or `k` or `workers` is zero.
pub fn top_k(table: &Table, order_col: &str, k: usize, workers: usize) -> Vec<usize> {
    assert!(k > 0, "k must be positive");
    assert!(workers > 0, "need at least one worker");
    let col = &table.columns[table.col_index(order_col)].data;
    let rows = col.len();

    // Per-worker heaps over contiguous chunks (min-heap of size k via
    // Reverse ordering on (value, Reverse(index))).
    let mut candidates: Vec<(i64, usize)> = Vec::new();
    let chunk = rows.div_ceil(workers);
    for w in 0..workers {
        let start = w * chunk;
        let end = ((w + 1) * chunk).min(rows);
        let mut heap: BinaryHeap<std::cmp::Reverse<(i64, std::cmp::Reverse<usize>)>> =
            BinaryHeap::new();
        for (r, &v) in col.iter().enumerate().take(end).skip(start) {
            heap.push(std::cmp::Reverse((v, std::cmp::Reverse(r))));
            if heap.len() > k {
                heap.pop();
            }
        }
        candidates
            .extend(heap.into_iter().map(|std::cmp::Reverse((v, std::cmp::Reverse(r)))| (v, r)));
    }

    // Merge: sort the ≤ workers×k candidates.
    candidates.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    candidates.truncate(k);
    candidates.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn table(vals: Vec<i64>) -> Table {
        Table::new(vec![Column::i64("v", vals)])
    }

    #[test]
    fn picks_largest_values() {
        let t = table(vec![5, 1, 9, 3, 7, 9]);
        let idx = top_k(&t, "v", 3, 1);
        assert_eq!(idx, vec![2, 5, 4], "9(first), 9(second), 7");
    }

    #[test]
    fn worker_count_is_invisible() {
        let vals: Vec<i64> = (0..1000).map(|i| (i * 7919) % 5000).collect();
        let t = table(vals);
        let a = top_k(&t, "v", 10, 1);
        for workers in [2, 8, 32, 100] {
            assert_eq!(top_k(&t, "v", 10, workers), a, "workers={workers}");
        }
    }

    #[test]
    fn k_larger_than_input_returns_everything_sorted() {
        let t = table(vec![3, 1, 2]);
        let idx = top_k(&t, "v", 10, 4);
        assert_eq!(idx, vec![0, 2, 1]);
    }

    #[test]
    fn ties_break_by_row_order() {
        let t = table(vec![5, 5, 5, 5]);
        assert_eq!(top_k(&t, "v", 2, 2), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        top_k(&table(vec![1]), "v", 0, 1);
    }
}
