//! Top-k selection.
//!
//! Each dpCore maintains a k-element heap over its chunk of the input;
//! the per-core heaps are merged at the end (the merge touches only
//! `cores × k` rows, so its cost is negligible — the same argument as the
//! group-by merge operator in §5.3).
//!
//! The SWAR arm replaces per-row heap churn with a branch-free
//! pre-filter: once a worker's heap holds k rows, whole 64-row blocks
//! test against the current k-th value ([`crate::vector::gt_mask_word`])
//! and only rows that can displace the heap minimum reach it. The
//! pre-filter is *exact*, not heuristic: with the ascending scan and the
//! `(value, Reverse(index))` ordering, pushing a row with `v <= t`
//! immediately pops that same row, leaving the heap untouched — so
//! skipping it is bit-identical to the scalar push/pop loop, even though
//! the threshold is only refreshed per block.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::bitvec::BitVec;
use crate::column::{pack, Pack, Table};
use crate::vector::{self, Kernel};

/// The per-worker min-heap entry ordering: `Reverse` over
/// `(value, Reverse(index))`, so the root is the smallest value with
/// ties held by the *largest* row index — exactly the element a new
/// tied row would displace-and-replace as a no-op.
type MinHeap = BinaryHeap<Reverse<(i64, Reverse<usize>)>>;

vector::kernel_entry! {
    /// Selects the top `k` row indices of `table` by `order_col`
    /// descending (ties broken by ascending row index, making results
    /// deterministic), on the process-wide kernel (`DPU_VECTOR`).
    ///
    /// `workers` models the per-core decomposition; the result is
    /// identical for any worker count.
    ///
    /// # Panics
    ///
    /// Panics if the column is missing, or `k` or `workers` is zero.
    pub fn top_k(table: &Table, order_col: &str, k: usize, workers: usize) -> Vec<usize>
        => |kernel| top_k_packed_with(table, order_col, k, workers, None, kernel, pack())
}

/// [`top_k`] with an optional selection (consumed a word at a time —
/// `filter_band` output words feed straight in, no per-row bool
/// expansion) and an explicit kernel choice, for differential tests and
/// benches.
///
/// # Panics
///
/// Panics if the column is missing, `k` or `workers` is zero, or the
/// selection length mismatches.
pub fn top_k_with(
    table: &Table,
    order_col: &str,
    k: usize,
    workers: usize,
    sel: Option<&BitVec>,
    kernel: Kernel,
) -> Vec<usize> {
    top_k_on(&table.columns[table.col_index(order_col)].data, k, workers, sel, kernel)
}

/// [`top_k_with`] with an explicit pack choice: a packed order column is
/// unpacked in lane batches and streamed through the same per-worker
/// heaps, so results are bit-identical to flat execution.
///
/// # Panics
///
/// Panics if the column is missing, `k` or `workers` is zero, or the
/// selection length mismatches.
pub fn top_k_packed_with(
    table: &Table,
    order_col: &str,
    k: usize,
    workers: usize,
    sel: Option<&BitVec>,
    kernel: Kernel,
    pack: Pack,
) -> Vec<usize> {
    let col = table.columns[table.col_index(order_col)].values(pack);
    top_k_on(&col, k, workers, sel, kernel)
}

/// The top-k core over a value slice.
fn top_k_on(
    col: &[i64],
    k: usize,
    workers: usize,
    sel: Option<&BitVec>,
    kernel: Kernel,
) -> Vec<usize> {
    assert!(k > 0, "k must be positive");
    assert!(workers > 0, "need at least one worker");
    let rows = col.len();
    if let Some(bv) = sel {
        assert_eq!(bv.len(), rows, "selection length mismatch");
    }

    // Per-worker heaps over contiguous chunks (min-heap of size k via
    // Reverse ordering on (value, Reverse(index))).
    let mut candidates: Vec<(i64, usize)> = Vec::new();
    let chunk = rows.div_ceil(workers);
    for w in 0..workers {
        // Both bounds clamp: with more workers than rows, trailing
        // chunks are empty, not out of range.
        let start = (w * chunk).min(rows);
        let end = ((w + 1) * chunk).min(rows);
        let heap = if kernel.vectorized() {
            chunk_heap_vector(col, start, end, k, sel)
        } else {
            chunk_heap_scalar(col, start, end, k, sel)
        };
        candidates.extend(heap.into_iter().map(|Reverse((v, Reverse(r)))| (v, r)));
    }

    // Merge: sort the ≤ workers×k candidates.
    candidates.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    candidates.truncate(k);
    candidates.into_iter().map(|(_, r)| r).collect()
}

/// The reference per-row loop: push every selected row, pop the minimum
/// once the heap exceeds k.
fn chunk_heap_scalar(
    col: &[i64],
    start: usize,
    end: usize,
    k: usize,
    sel: Option<&BitVec>,
) -> MinHeap {
    let mut heap = MinHeap::new();
    let mut visit = |r: usize| {
        heap.push(Reverse((col[r], Reverse(r))));
        if heap.len() > k {
            heap.pop();
        }
    };
    match sel {
        Some(bv) => bv.iter_set_in(start, end).for_each(&mut visit),
        None => (start..end).for_each(&mut visit),
    }
    heap
}

/// The SWAR arm: identical heap discipline, but once the heap is full,
/// each fully-covered 64-row block pre-filters against the block-start
/// threshold with one branch-free word test ANDed into the selection
/// word, and only surviving rows touch the heap. A stale threshold only
/// admits extra no-op push/pops (see the module docs), so the final
/// heap — and its internal layout — exactly matches the scalar arm's.
fn chunk_heap_vector(
    col: &[i64],
    start: usize,
    end: usize,
    k: usize,
    sel: Option<&BitVec>,
) -> MinHeap {
    let mut heap = MinHeap::new();
    if start >= end {
        return heap;
    }
    let (wlo, whi) = (start / 64, end.div_ceil(64));
    for wi in wlo..whi {
        let base = wi * 64;
        // The selection word for rows [base, base + 64), clipped to the
        // worker's [start, end) range.
        let mut mask = sel.map_or(!0u64, |bv| bv.words()[wi]);
        if base < start {
            mask &= !0u64 << (start - base);
        }
        if base + 64 > end {
            mask &= !0u64 >> (base + 64 - end);
        }
        if heap.len() >= k {
            if let Some(block) = col.get(base..base + 64) {
                // Full block: one word-wide threshold test. Rows at or
                // below t cannot change the heap; rows above t might
                // (t == i64::MAX clears the word outright — no `t + 1`).
                let t = heap.peek().expect("heap holds k > 0 rows").0 .0;
                mask &= vector::gt_mask_word(block, t);
            }
            // A partial tail block skips the pre-filter: its rows run
            // the plain push/pop below, same as the scalar arm.
        }
        while mask != 0 {
            let r = base + mask.trailing_zeros() as usize;
            mask &= mask - 1;
            heap.push(Reverse((col[r], Reverse(r))));
            if heap.len() > k {
                heap.pop();
            }
        }
    }
    heap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn table(vals: Vec<i64>) -> Table {
        Table::new(vec![Column::i64("v", vals)])
    }

    #[test]
    fn picks_largest_values() {
        let t = table(vec![5, 1, 9, 3, 7, 9]);
        let idx = top_k(&t, "v", 3, 1);
        assert_eq!(idx, vec![2, 5, 4], "9(first), 9(second), 7");
    }

    #[test]
    fn worker_count_is_invisible() {
        let vals: Vec<i64> = (0..1000).map(|i| (i * 7919) % 5000).collect();
        let t = table(vals);
        let a = top_k(&t, "v", 10, 1);
        for workers in [2, 8, 32, 100] {
            assert_eq!(top_k(&t, "v", 10, workers), a, "workers={workers}");
        }
    }

    #[test]
    fn kernels_agree_with_and_without_selection() {
        let vals: Vec<i64> = (0..500).map(|i| (i * 37) % 91 - 45).collect();
        let t = table(vals.clone());
        let sel = BitVec::from_fn(vals.len(), |i| i % 3 != 0);
        for k in [1usize, 7, 100] {
            for workers in [1usize, 3, 8] {
                for sel in [None, Some(&sel)] {
                    let scalar = top_k_with(&t, "v", k, workers, sel, Kernel::Scalar);
                    let swar = top_k_with(&t, "v", k, workers, sel, Kernel::Swar);
                    assert_eq!(scalar, swar, "k={k} workers={workers} sel={}", sel.is_some());
                }
            }
        }
    }

    #[test]
    fn k_larger_than_input_returns_everything_sorted() {
        let t = table(vec![3, 1, 2]);
        let idx = top_k(&t, "v", 10, 4);
        assert_eq!(idx, vec![0, 2, 1]);
    }

    #[test]
    fn ties_break_by_row_order() {
        let t = table(vec![5, 5, 5, 5]);
        assert_eq!(top_k(&t, "v", 2, 2), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        top_k(&table(vec![1]), "v", 0, 1);
    }
}
