//! The filter primitive (Figure 15).
//!
//! On the DPU, filtering is a BVLD/FILT loop: the DMS streams a column
//! tile into DMEM, and the dpCore evaluates a band predicate per element
//! with the single-cycle `FILT` instruction, shifting result bits into an
//! accumulator that is stored every 64 rows. [`measure_filter_kernel`]
//! assembles that exact inner loop and runs it on the ISA interpreter —
//! the paper's 1.65 cycles/tuple is *measured*, not assumed.

use dpu_isa::asm::assemble;
use dpu_isa::interp::{Cpu, Trap};

use crate::bitvec::BitVec;
use crate::column::{pack, Pack, Table};
use crate::vector::{self, Kernel};

/// Comparison operators supported by the engine's scan predicates; all
/// lower to the FILT band `[lo, hi]` on signed 32-bit values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `lo <= x <= hi` (the native FILT form).
    Between(i64, i64),
    /// `x == v`.
    Eq(i64),
    /// `x < v`.
    Lt(i64),
    /// `x <= v`.
    Le(i64),
    /// `x > v`.
    Gt(i64),
    /// `x >= v`.
    Ge(i64),
}

impl CompareOp {
    /// The inclusive band `[lo, hi]` this comparison selects.
    pub fn band(self) -> (i64, i64) {
        match self {
            CompareOp::Between(lo, hi) => (lo, hi),
            CompareOp::Eq(v) => (v, v),
            CompareOp::Lt(v) => (i32::MIN as i64, v - 1),
            CompareOp::Le(v) => (i32::MIN as i64, v),
            CompareOp::Gt(v) => (v + 1, i32::MAX as i64),
            CompareOp::Ge(v) => (v, i32::MAX as i64),
        }
    }

    /// Evaluates the predicate on a value.
    pub fn matches(self, x: i64) -> bool {
        let (lo, hi) = self.band();
        lo <= x && x <= hi
    }
}

/// A single-column band filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterSpec {
    /// Column to scan.
    pub column: String,
    /// Predicate.
    pub op: CompareOp,
}

impl FilterSpec {
    /// Creates a filter.
    pub fn new(column: &str, op: CompareOp) -> Self {
        FilterSpec { column: column.to_string(), op }
    }

    vector::kernel_entry! {
        /// Applies the filter to a table, producing a selection vector
        /// (reference semantics; the timed path runs on the DPU models).
        /// Runs the process-wide kernel ([`vector::kernel`],
        /// `DPU_VECTOR`) and pack choice ([`pack`], `DPU_PACK`): the
        /// scalar per-row loop, the SWAR 64-rows-per-word kernel, or —
        /// when the column is packed — the encoded-domain packed kernel.
        /// Bit-identical every way.
        pub fn apply(&self, table: &Table) -> BitVec =>
            |kernel| self.apply_packed_with(table, kernel, pack())
    }

    /// Applies the filter with an explicit kernel choice on the flat
    /// representation (differential tests and benches compare the arms
    /// in one process).
    pub fn apply_with(&self, table: &Table, kernel: Kernel) -> BitVec {
        self.apply_packed_with(table, kernel, Pack::Off)
    }

    /// Applies the filter with explicit kernel *and* pack choices. With
    /// packing on and the scanned column packed, the vectorized arms run
    /// [`vector::filter_band_packed`] directly on the packed words and
    /// the scalar arm evaluates per row through [`PackedColumn::get`]
    /// (the packed reference path); flat columns and [`Pack::Off`] take
    /// the exact pre-packing paths.
    ///
    /// [`PackedColumn::get`]: crate::column::PackedColumn::get
    pub fn apply_packed_with(&self, table: &Table, kernel: Kernel, pack: Pack) -> BitVec {
        let col =
            table.column(&self.column).unwrap_or_else(|| panic!("no column {:?}", self.column));
        match (&col.packed, pack.on()) {
            (Some(p), true) => {
                if kernel.vectorized() {
                    let (lo, hi) = self.op.band();
                    vector::filter_band_packed(p, lo, hi)
                } else {
                    BitVec::from_fn(p.len(), |i| self.op.matches(p.get(i)))
                }
            }
            _ => {
                if kernel.vectorized() {
                    let (lo, hi) = self.op.band();
                    vector::filter_band(&col.data, lo, hi)
                } else {
                    BitVec::from_fn(col.data.len(), |i| self.op.matches(col.data[i]))
                }
            }
        }
    }
}

/// Result of running the FILT inner loop on the interpreter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterKernelMeasurement {
    /// Rows filtered.
    pub rows: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
}

impl FilterKernelMeasurement {
    /// Cycles per tuple — the Figure 15 metric (paper: 1.65 at large
    /// tiles, i.e. 482 Mtuples/s at 800 MHz).
    pub fn cycles_per_tuple(&self) -> f64 {
        self.cycles as f64 / self.rows as f64
    }

    /// Tuples per second at the 800 MHz core clock.
    pub fn tuples_per_sec(&self) -> f64 {
        800.0e6 / self.cycles_per_tuple()
    }
}

/// The unrolled BVLD/FILT kernel: 8 rows per inner iteration,
/// software-pipelined so each `lw` (LSU pipe) co-issues with the previous
/// row's `filt` (ALU pipe), hiding the 2-cycle load-use latency; one
/// 64-bit bit-vector store per 64 rows.
fn filter_kernel_asm() -> String {
    let mut body = String::from(
        "       # r2=data ptr, r11=bv out ptr, r3=64-row blocks, r10=bounds
        block:  addi r12, r0, 8
        inner:  lw   r13, 0(r2)
                lw   r14, 4(r2)",
    );
    // Rotating registers r13..r20; filt of row i overlaps lw of row i+2.
    for i in 2..8 {
        body.push_str(&format!(
            "
                filt r4, r{}, r10
                lw   r{}, {}(r2)",
            11 + i,
            13 + i,
            i * 4
        ));
    }
    body.push_str(
        "
                filt r4, r19, r10
                addi r2, r2, 32
                filt r4, r20, r10
                addi r12, r12, -1
                bne  r12, r0, inner
                sd   r4, 0(r11)
                addi r11, r11, 8
                addi r3, r3, -1
                bne  r3, r0, block
                halt",
    );
    body
}

/// Runs the real FILT kernel over `rows` 4-byte values in DMEM (bounds
/// `[lo, hi]` as signed 32-bit) and returns both timing and the produced
/// bit vector.
///
/// # Panics
///
/// Panics unless `rows` is a positive multiple of 64 and the tile fits a
/// 32 KB DMEM alongside its output bit vector.
pub fn measure_filter_kernel(
    values: &[i32],
    lo: i32,
    hi: i32,
) -> (FilterKernelMeasurement, BitVec) {
    let rows = values.len();
    assert!(rows > 0 && rows.is_multiple_of(64), "rows must be a positive multiple of 64");
    let data_bytes = rows * 4;
    let bv_bytes = rows / 8;
    assert!(data_bytes + bv_bytes <= 31 * 1024, "tile exceeds DMEM");

    let prog = assemble(&filter_kernel_asm()).expect("kernel assembles");
    let mut cpu = Cpu::new(32 * 1024);
    for (i, &v) in values.iter().enumerate() {
        let b = (v as u32).to_le_bytes();
        cpu.dmem_mut()[i * 4..i * 4 + 4].copy_from_slice(&b);
    }
    // Register setup: data at 0, bit vector output after the data.
    cpu.set_reg(2, 0);
    cpu.set_reg(11, data_bytes as u64);
    cpu.set_reg(3, (rows / 64) as u64);
    cpu.set_reg(10, ((hi as u32 as u64) << 32) | lo as u32 as u64);

    let sum = cpu.run(&prog, 100_000_000).expect("kernel runs");
    assert_eq!(sum.trap, Trap::Halt, "kernel must halt");

    // Decode the produced bit vector: FILT shifts left, so within each
    // 64-row block, row k lands at bit 63-k.
    let mut bv = BitVec::new(rows);
    for block in 0..rows / 64 {
        let mut word = 0u64;
        let base = data_bytes + block * 8;
        for (i, &b) in cpu.dmem()[base..base + 8].iter().enumerate() {
            word |= (b as u64) << (8 * i);
        }
        for k in 0..64 {
            if word >> (63 - k) & 1 == 1 {
                bv.set(block * 64 + k);
            }
        }
    }
    (
        FilterKernelMeasurement {
            rows: rows as u64,
            cycles: sum.cycles,
            instructions: sum.instructions,
        },
        bv,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn compare_ops_lower_to_bands() {
        assert!(CompareOp::Eq(5).matches(5));
        assert!(!CompareOp::Eq(5).matches(6));
        assert!(CompareOp::Lt(5).matches(4));
        assert!(!CompareOp::Lt(5).matches(5));
        assert!(CompareOp::Le(5).matches(5));
        assert!(CompareOp::Gt(5).matches(6));
        assert!(CompareOp::Ge(5).matches(5));
        assert!(CompareOp::Between(2, 4).matches(3));
        assert!(!CompareOp::Between(2, 4).matches(5));
    }

    #[test]
    fn filter_spec_selects_rows() {
        let t = Table::new(vec![Column::i32("x", (0..100).collect())]);
        let bv = FilterSpec::new("x", CompareOp::Between(10, 19)).apply(&t);
        assert_eq!(bv.count(), 10);
        assert!(bv.get(10) && bv.get(19) && !bv.get(20));
    }

    #[test]
    fn packed_apply_is_bit_identical_to_flat() {
        let mut t = Table::new(vec![Column::i32("x", (0..5000).map(|i| i % 300).collect())]);
        t.encode_packed();
        assert!(t.columns[0].packed.is_some());
        for op in
            [CompareOp::Between(10, 190), CompareOp::Eq(42), CompareOp::Lt(3), CompareOp::Ge(299)]
        {
            let spec = FilterSpec::new("x", op);
            let flat = spec.apply_with(&t, Kernel::Scalar);
            for kernel in [Kernel::Scalar, Kernel::Swar] {
                for pack in [Pack::Off, Pack::On] {
                    let got = spec.apply_packed_with(&t, kernel, pack);
                    assert_eq!(got.words(), flat.words(), "{op:?} {kernel:?} {pack:?}");
                }
            }
        }
    }

    #[test]
    fn kernel_matches_reference_semantics() {
        let values: Vec<i32> = (0..256).map(|i| (i * 37 % 100) - 50).collect();
        let (m, bv) = measure_filter_kernel(&values, -10, 25);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(bv.get(i), (-10..=25).contains(&v), "row {i} value {v}");
        }
        assert_eq!(m.rows, 256);
        assert!(m.cycles > 0);
    }

    #[test]
    fn kernel_achieves_paper_rate() {
        // Figure 15: ≈1.65 cycles/tuple (482 Mtuples/s) at large tiles.
        let values: Vec<i32> = (0..4096).collect();
        let (m, _) = measure_filter_kernel(&values, 100, 3000);
        let cpt = m.cycles_per_tuple();
        assert!(
            (1.2..=1.9).contains(&cpt),
            "cycles/tuple {cpt:.3} outside the plausible band around 1.65"
        );
        assert!(m.tuples_per_sec() > 400.0e6, "rate {:.0}/s", m.tuples_per_sec());
    }

    #[test]
    fn small_tiles_cost_more_per_tuple() {
        let small: Vec<i32> = (0..64).collect();
        let large: Vec<i32> = (0..4096).collect();
        let (ms, _) = measure_filter_kernel(&small, 0, 10);
        let (ml, _) = measure_filter_kernel(&large, 0, 10);
        assert!(ms.cycles_per_tuple() >= ml.cycles_per_tuple());
    }

    #[test]
    fn negative_band_works_in_kernel() {
        let values: Vec<i32> = vec![-100, -5, 0, 5, 100, i32::MIN, i32::MAX, -1]
            .into_iter()
            .cycle()
            .take(64)
            .collect();
        let (_, bv) = measure_filter_kernel(&values, -10, 10);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(bv.get(i), (-10..=10).contains(&v), "row {i} = {v}");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn non_block_rows_rejected() {
        measure_filter_kernel(&[1, 2, 3], 0, 10);
    }
}
