//! Scalar expression trees.
//!
//! TPC-H aggregates compute expressions like
//! `l_extendedprice * (1 - l_discount) * (1 + l_tax)`; the engine
//! evaluates them columnar-style (one operator over a whole tile) and
//! reports the dpCore operation mix so the cost layer can price the
//! pass. All arithmetic is 64-bit integer (the DPU's fixed-point
//! discipline: money in cents, percentages in points).

use dpu_isa::OpCounts;

use crate::column::{pack, Pack, Table};
use crate::vector::{self, Kernel};

/// A scalar expression over a table's columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A column reference by name.
    Col(String),
    /// An integer literal.
    Lit(i64),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication (prices the dpCore's variable-latency multiplier).
    Mul(Box<Expr>, Box<Expr>),
    /// Integer division.
    ///
    /// Divisors of zero make [`eval`](Expr::eval) panic — the planner is
    /// expected to guard, as the engine's fixed-point discipline demands.
    Div(Box<Expr>, Box<Expr>),
    /// Two-sided clamp (used for saturation semantics).
    Clamp(Box<Expr>, i64, i64),
}

impl Expr {
    /// Column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Col(name.to_string())
    }

    /// Literal.
    pub fn lit(v: i64) -> Expr {
        Expr::Lit(v)
    }

    vector::kernel_entry! {
        /// Evaluates over every row, columnar style, on the process-wide
        /// kernel (`DPU_VECTOR`): the reference per-row zip loop or the
        /// SWAR lane arithmetic — bit-identical (both wrap, and both
        /// trip the same division-by-zero assert at the same first row).
        ///
        /// # Panics
        ///
        /// Panics on missing columns or division by zero.
        pub fn eval(&self, table: &Table) -> Vec<i64> =>
            |kernel| self.eval_packed_with(table, kernel, pack())
    }

    /// [`eval`](Expr::eval) with an explicit kernel choice, for
    /// differential tests and benches.
    ///
    /// # Panics
    ///
    /// Panics on missing columns or division by zero.
    pub fn eval_with(&self, table: &Table, kernel: Kernel) -> Vec<i64> {
        if kernel.vectorized() {
            self.eval_vector(table)
        } else {
            self.eval_scalar(table)
        }
    }

    /// [`eval_with`](Expr::eval_with) with an explicit pack choice:
    /// packed referenced columns are unpacked in lane batches once up
    /// front, then the chosen evaluator runs unchanged — bit-identical
    /// results (including panic rows) either way.
    ///
    /// # Panics
    ///
    /// Panics on missing columns or division by zero.
    pub fn eval_packed_with(&self, table: &Table, kernel: Kernel, pack: Pack) -> Vec<i64> {
        let cols = self.columns_read();
        let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        match table.decode_for(&refs, pack) {
            Some(decoded) => self.eval_with(&decoded, kernel),
            None => self.eval_with(table, kernel),
        }
    }

    /// The reference per-row evaluator.
    fn eval_scalar(&self, table: &Table) -> Vec<i64> {
        let rows = table.rows();
        match self {
            Expr::Col(name) => table.columns[table.col_index(name)].data.clone(),
            Expr::Lit(v) => vec![*v; rows],
            Expr::Add(a, b) => {
                zip(a.eval_scalar(table), b.eval_scalar(table), |x, y| x.wrapping_add(y))
            }
            Expr::Sub(a, b) => {
                zip(a.eval_scalar(table), b.eval_scalar(table), |x, y| x.wrapping_sub(y))
            }
            Expr::Mul(a, b) => {
                zip(a.eval_scalar(table), b.eval_scalar(table), |x, y| x.wrapping_mul(y))
            }
            Expr::Div(a, b) => zip(a.eval_scalar(table), b.eval_scalar(table), |x, y| {
                assert!(y != 0, "expression division by zero");
                x / y
            }),
            Expr::Clamp(a, lo, hi) => {
                a.eval_scalar(table).into_iter().map(|v| v.clamp(*lo, *hi)).collect()
            }
        }
    }

    /// The SWAR evaluator: each binary node materializes its operands
    /// and combines them in place with quad-unrolled lane ops
    /// ([`vector::add_lanes`] and friends) instead of a fresh allocation
    /// per node. Wrapping semantics, clamp bounds, and the per-row
    /// division assert match the scalar arm exactly.
    fn eval_vector(&self, table: &Table) -> Vec<i64> {
        let rows = table.rows();
        match self {
            Expr::Col(name) => table.columns[table.col_index(name)].data.clone(),
            Expr::Lit(v) => vec![*v; rows],
            Expr::Add(a, b) => {
                let mut x = a.eval_vector(table);
                vector::add_lanes(&mut x, &b.eval_vector(table));
                x
            }
            Expr::Sub(a, b) => {
                let mut x = a.eval_vector(table);
                vector::sub_lanes(&mut x, &b.eval_vector(table));
                x
            }
            Expr::Mul(a, b) => {
                let mut x = a.eval_vector(table);
                vector::mul_lanes(&mut x, &b.eval_vector(table));
                x
            }
            Expr::Div(a, b) => {
                let mut x = a.eval_vector(table);
                vector::div_lanes(&mut x, &b.eval_vector(table));
                x
            }
            Expr::Clamp(a, lo, hi) => {
                let mut x = a.eval_vector(table);
                vector::clamp_lanes(&mut x, *lo, *hi);
                x
            }
        }
    }

    /// Per-row dpCore operation counts of one evaluation pass.
    pub fn per_row_counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        self.accumulate(&mut c);
        c
    }

    fn accumulate(&self, c: &mut OpCounts) {
        match self {
            Expr::Col(_) => c.loads += 1,
            Expr::Lit(_) => {} // register-resident
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                a.accumulate(c);
                b.accumulate(c);
                c.alu += 1;
            }
            Expr::Mul(a, b) => {
                a.accumulate(c);
                b.accumulate(c);
                c.mul += 1;
                // Money-range operands keep the iterative multiplier at
                // its ~32-bit latency.
                c.mul_stall_cycles += 8;
            }
            Expr::Div(a, b) => {
                a.accumulate(c);
                b.accumulate(c);
                // Software division on the dpCore: ~20 cycles.
                c.alu += 1;
                c.dependency_stalls += 20;
            }
            Expr::Clamp(a, _, _) => {
                a.accumulate(c);
                c.alu += 2;
            }
        }
    }

    /// Set of column names the expression reads (for byte accounting).
    pub fn columns_read(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_cols(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_cols(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(n) => out.push(n.clone()),
            Expr::Lit(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_cols(out);
                b.collect_cols(out);
            }
            Expr::Clamp(a, _, _) => a.collect_cols(out),
        }
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }
}

fn zip(a: Vec<i64>, b: Vec<i64>, f: impl Fn(i64, i64) -> i64) -> Vec<i64> {
    a.into_iter().zip(b).map(|(x, y)| f(x, y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use dpu_isa::PipelineModel;

    fn t() -> Table {
        Table::new(vec![
            Column::i32("price", vec![100, 200, 300]),
            Column::i32("disc", vec![10, 0, 50]),
            Column::i32("tax", vec![5, 8, 0]),
        ])
    }

    #[test]
    fn tpch_revenue_expression() {
        // price * (100 - disc) * (100 + tax) — the Q1 shape, in percent
        // points.
        let e = Expr::col("price")
            * (Expr::lit(100) - Expr::col("disc"))
            * (Expr::lit(100) + Expr::col("tax"));
        let got = e.eval(&t());
        assert_eq!(got, vec![100 * 90 * 105, 200 * 100 * 108, 300 * 50 * 100]);
    }

    #[test]
    fn division_and_clamp() {
        let e =
            Expr::Clamp(Box::new(Expr::col("price") / (Expr::col("tax") + Expr::lit(1))), 0, 40);
        assert_eq!(e.eval(&t()), vec![16, 22, 40]);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        (Expr::col("price") / Expr::col("tax")).eval(&t());
    }

    #[test]
    fn op_counts_reflect_tree_shape() {
        let e = Expr::col("price") * (Expr::lit(100) - Expr::col("disc"));
        let c = e.per_row_counts();
        assert_eq!(c.loads, 2, "two column reads");
        assert_eq!(c.alu, 1, "one subtract");
        assert_eq!(c.mul, 1);
        assert!(c.mul_stall_cycles > 0);
        // The dpCore prices the multiplier stall; an OoO core would not.
        let dpu = c.dpcore_cycles(&PipelineModel::default());
        assert!(dpu >= c.mul_stall_cycles);
    }

    #[test]
    fn columns_read_deduplicates() {
        let e = (Expr::col("price") + Expr::col("price")) * Expr::col("disc");
        assert_eq!(e.columns_read(), vec!["disc".to_string(), "price".to_string()]);
    }

    #[test]
    fn kernels_agree_including_overflow_wrap() {
        let t = Table::new(vec![
            Column::i64("a", vec![i64::MAX, i64::MIN, 7, -3]),
            Column::i64("b", vec![2, -1, i64::MAX, 5]),
        ]);
        let e = Expr::Clamp(
            Box::new(
                (Expr::col("a") * Expr::col("b") + Expr::col("a") - Expr::col("b"))
                    / (Expr::lit(3)),
            ),
            -1_000_000,
            1_000_000,
        );
        assert_eq!(e.eval_with(&t, Kernel::Scalar), e.eval_with(&t, Kernel::Swar));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn vector_division_by_zero_panics_too() {
        (Expr::col("price") / Expr::col("tax")).eval_with(&t(), Kernel::Swar);
    }

    #[test]
    fn literal_only_expression() {
        let e = Expr::lit(6) * Expr::lit(7);
        assert_eq!(e.eval(&t()), vec![42, 42, 42]);
        assert_eq!(e.per_row_counts().loads, 0);
    }
}
