//! HyperLogLog cardinality sketches (§5.4), shared between the apps
//! layer (Figure 14 throughput study) and the query planner (NDV
//! statistics feeding the cost model).
//!
//! The DPU implementation exploits three hardware hooks the paper calls
//! out: (i) the single-cycle `CRC32` instruction ("almost 9× better than
//! the x86 implementation"), versus Murmur64 which "does poorly on the
//! DPU due to the high latency multiplier"; (ii) counting *trailing*
//! zeros (4 cycles via `POPC`) instead of leading zeros (13 cycles of
//! shift-smearing) — valid because a good hash's bits are exchangeable;
//! (iii) ATE work stealing instead of a static schedule, "essential to
//! avoid long tail latencies" from the variable-latency multiplier.
//!
//! Sketch geometry and math live here; the dpCore/Xeon throughput models
//! built on the sketch stay in `dpu-apps::hll`.

use dpu_isa::hash::{crc32c_u64, HashKind};

/// How the rank (ρ) of a hash is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankMethod {
    /// Count trailing zeros — the DPU-optimized path (POPC trick).
    TrailingZeros,
    /// Count leading zeros — the textbook formulation.
    LeadingZeros,
}

impl RankMethod {
    /// dpCore cycles per rank computation (§5.4: "The NTZ operation takes
    /// only 4 cycles on a dpCore as compared to 13 cycles for a NLZ").
    /// These agree with running the instruction sequences on the ISA
    /// interpreter (see `dpu-isa`'s `ntz_faster_than_nlz` test).
    pub fn dpcore_cycles(self) -> u64 {
        match self {
            RankMethod::TrailingZeros => 4,
            RankMethod::LeadingZeros => 13,
        }
    }
}

/// A HyperLogLog sketch.
///
/// # Example
///
/// ```
/// use dpu_sql::hll::HyperLogLog;
/// use dpu_isa::hash::HashKind;
///
/// let mut h = HyperLogLog::new(12, HashKind::Crc32);
/// for i in 0..50_000u64 {
///     h.insert(i);
/// }
/// let e = h.estimate();
/// assert!((e - 50_000.0).abs() / 50_000.0 < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
    hash: HashKind,
    rank: RankMethod,
}

impl HyperLogLog {
    /// Creates a sketch with `2^precision` registers (4 ≤ precision ≤ 18).
    ///
    /// # Panics
    ///
    /// Panics if precision is out of range.
    pub fn new(precision: u8, hash: HashKind) -> Self {
        assert!((4..=18).contains(&precision), "precision out of range");
        HyperLogLog {
            precision,
            registers: vec![0; 1 << precision],
            hash,
            rank: RankMethod::TrailingZeros,
        }
    }

    /// Selects the rank method (default: trailing zeros, the DPU path).
    pub fn with_rank(mut self, rank: RankMethod) -> Self {
        self.rank = rank;
        self
    }

    /// Number of registers.
    pub fn registers(&self) -> usize {
        self.registers.len()
    }

    /// The standard error of the estimator, ≈ 1.04/√m.
    pub fn std_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }

    /// The 64-bit hash: Murmur64 natively; for CRC32 the dpCore runs the
    /// engine twice (four single-cycle steps) to fill both halves.
    ///
    /// CRC32 is linear over GF(2), so *sequential* integer keys collide
    /// structurally in any fixed bit window (see the
    /// `crc_linearity_artifact` test); the paper's "well behaving hash"
    /// assumption holds for realistic, high-entropy keys. Planner
    /// statistics sketch raw (often sequential) key columns, so they use
    /// `HashKind::Murmur64`.
    fn hash64(&self, item: u64) -> u64 {
        match self.hash {
            HashKind::Crc32 => {
                (crc32c_u64(item) as u64)
                    | ((crc32c_u64(item ^ 0x9E37_79B9_7F4A_7C15) as u64) << 32)
            }
            HashKind::Murmur64 => self.hash.hash(item),
        }
    }

    /// Inserts one item.
    pub fn insert(&mut self, item: u64) {
        let h = self.hash64(item);
        let idx = (h & ((1 << self.precision) - 1)) as usize;
        let rest = h >> self.precision;
        let rho = match self.rank {
            // +1 so an all-zero remainder maps to the max rank, as in the
            // classical definition.
            RankMethod::TrailingZeros => (rest.trailing_zeros() as u8).min(64 - self.precision) + 1,
            RankMethod::LeadingZeros => {
                ((rest << self.precision).leading_zeros() as u8).min(64 - self.precision) + 1
            }
        };
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// Merges another sketch (same geometry) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the sketches have different precision or hash.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        assert_eq!(self.hash, other.hash, "hash mismatch");
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(b);
        }
    }

    /// Estimates the cardinality (harmonic mean with the standard small-
    /// and large-range corrections).
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_within_3_percent_at_p12() {
        for kind in [HashKind::Crc32, HashKind::Murmur64] {
            let mut h = HyperLogLog::new(12, kind);
            let n = 200_000u64;
            for i in 0..n {
                h.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
            let e = h.estimate();
            let err = (e - n as f64).abs() / n as f64;
            assert!(err < 0.03, "{kind:?}: estimate {e}, err {err}");
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new(10, HashKind::Crc32);
        for _ in 0..100 {
            for i in 0..1000u64 {
                h.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        let e = h.estimate();
        assert!((e - 1000.0).abs() / 1000.0 < 0.1, "estimate {e}");
    }

    #[test]
    fn crc_linearity_artifact_on_sequential_keys() {
        // CRC32 is GF(2)-linear: 1000 *sequential* keys (spanning ~10
        // input bits) land in at most 512 of 1024 buckets — a structural
        // property worth knowing when reusing the DMS hash engine for
        // sketching. High-entropy keys do not exhibit it. Murmur64 (the
        // planner's choice for raw key columns) spreads both.
        use std::collections::HashSet;
        let seq: HashSet<u32> = (0..1000u64).map(|k| crc32c_u64(k) & 1023).collect();
        assert!(seq.len() <= 512, "sequential keys spread to {}", seq.len());
        let mixed: HashSet<u32> = (0..1000u64)
            .map(|k| crc32c_u64(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & 1023)
            .collect();
        assert!(mixed.len() > 560, "mixed keys spread to only {}", mixed.len());
    }

    #[test]
    fn murmur_handles_sequential_keys() {
        // The planner sketches raw key columns (sequential orderkeys);
        // Murmur64 keeps the estimate in bounds where CRC32's linearity
        // would wreck it.
        let n = 100_000u64;
        let mut h = HyperLogLog::new(12, HashKind::Murmur64);
        for i in 0..n {
            h.insert(i);
        }
        let e = h.estimate();
        assert!((e - n as f64).abs() / (n as f64) < 0.05, "estimate {e}");
    }

    #[test]
    fn small_range_correction_kicks_in() {
        let mut h = HyperLogLog::new(12, HashKind::Crc32);
        for i in 0..10u64 {
            h.insert(i);
        }
        let e = h.estimate();
        assert!((5.0..20.0).contains(&e), "estimate {e}");
    }

    #[test]
    fn ntz_and_nlz_are_statistically_equivalent() {
        // The paper's key observation: rank by trailing zeros estimates
        // as well as rank by leading zeros.
        let n = 100_000u64;
        let mut a = HyperLogLog::new(12, HashKind::Crc32).with_rank(RankMethod::TrailingZeros);
        let mut b = HyperLogLog::new(12, HashKind::Crc32).with_rank(RankMethod::LeadingZeros);
        for i in 0..n {
            let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            a.insert(k);
            b.insert(k);
        }
        let (ea, eb) = (a.estimate(), b.estimate());
        assert!((ea - n as f64).abs() / (n as f64) < 0.05, "NTZ {ea}");
        assert!((eb - n as f64).abs() / (n as f64) < 0.05, "NLZ {eb}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(10, HashKind::Crc32);
        let mut b = HyperLogLog::new(10, HashKind::Crc32);
        let mut whole = HyperLogLog::new(10, HashKind::Crc32);
        for i in 0..50_000u64 {
            if i % 2 == 0 {
                a.insert(i);
            } else {
                b.insert(i);
            }
            whole.insert(i);
        }
        a.merge(&b);
        assert_eq!(a.registers, whole.registers);
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_geometry_checked() {
        let mut a = HyperLogLog::new(10, HashKind::Crc32);
        let b = HyperLogLog::new(11, HashKind::Crc32);
        a.merge(&b);
    }
}
