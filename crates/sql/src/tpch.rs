//! TPC-H: scaled data generation and the Figure 16 query set.
//!
//! The paper connects its DPU SQL engine to a commercial columnar
//! database and offloads TPC-H execution, reporting a 15× geometric-mean
//! performance/watt gain (Figure 16). We regenerate that experiment with
//! a dbgen-shaped synthetic dataset (deterministic, scaled down) and
//! eight representative queries; each query executes functionally (tested
//! against naive references) while accumulating platform costs through
//! [`CostAcc`].
//!
//! Monetary values are integer cents; percentages are integer points;
//! dates are days since 1992-01-01.

use dpu_pool::{chunk_bounds, Pool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xeon_model::Xeon;

use crate::agg::{AggFunc, GroupByPlan, GroupBySpec};
use crate::column::{Column, Table};
use crate::filter::{CompareOp, FilterSpec};
use crate::join::HashJoin;
use crate::plan::{CostAcc, QueryCost};
use crate::topk::top_k;

/// Day count of 1995-01-01 relative to 1992-01-01 (used by Q3/Q5-style
/// date predicates).
pub const D_1995: i64 = 1096;
/// Total days covered by order dates (1992-01-01 .. 1998-08-02).
pub const ORDER_DAYS: i64 = 2405;

// Per-operator compute costs (cycles per row). The DPU numbers come from
// the measured FILT kernel (scan) and single-cycle DMEM hash tables; the
// Xeon numbers assume SIMD scans and L2-resident probes after
// partitioning.
pub const SCAN_DPU: f64 = 1.65;
/// The Figure 16 baseline is "a widely used commercial database with
/// in-memory columnar query execution", not the hand-tuned kernels of
/// Figure 14. Commercial engines realize roughly half of hand-tuned
/// scan bandwidth (expression interpretation, operator overheads,
/// row-group bookkeeping) — this factor scales the Xeon side of every
/// TPC-H query accordingly.
pub const XEON_DB_EFFICIENCY: f64 = 0.5;
pub const SCAN_XEON: f64 = 0.5;
pub const PROBE_DPU: f64 = 8.0;
pub const PROBE_XEON: f64 = 12.0;
pub const AGG_DPU: f64 = 6.0;
pub const AGG_XEON: f64 = 10.0;

/// The generated database.
#[derive(Debug, Clone, PartialEq)]
pub struct TpchDb {
    /// Fact table.
    pub lineitem: Table,
    /// Orders.
    pub orders: Table,
    /// Customers.
    pub customer: Table,
    /// Parts.
    pub part: Table,
    /// Suppliers.
    pub supplier: Table,
    /// Nations (25).
    pub nation: Table,
    /// Regions (5).
    pub region: Table,
}

impl TpchDb {
    /// Table name/reference pairs, fact table first.
    pub fn tables(&self) -> [(&'static str, &Table); 7] {
        [
            ("lineitem", &self.lineitem),
            ("orders", &self.orders),
            ("customer", &self.customer),
            ("part", &self.part),
            ("supplier", &self.supplier),
            ("nation", &self.nation),
            ("region", &self.region),
        ]
    }

    /// Packs every column of every table where packing pays
    /// ([`crate::column::Column::encode_packed`]). The generate paths
    /// call this once at load — unconditionally, so resident sizes (and
    /// every simulated cost derived from them) never depend on the
    /// `DPU_PACK` execution knob. Idempotent and deterministic:
    /// encoding depends only on the values, never on thread count.
    pub fn encode_packed(&mut self) {
        for t in [
            &mut self.lineitem,
            &mut self.orders,
            &mut self.customer,
            &mut self.part,
            &mut self.supplier,
            &mut self.nation,
            &mut self.region,
        ] {
            t.encode_packed();
        }
    }

    /// Per-table compression report (bits/value per column, resident
    /// packed vs flat bytes) — what `rack_tpch` prints next to the skew
    /// report.
    pub fn compression_report(&self) -> Vec<TableCompression> {
        self.tables().iter().map(|(n, t)| TableCompression::of(n, t)).collect()
    }
}

/// One column's share of a [`TableCompression`] report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnCompression {
    /// Column name.
    pub name: String,
    /// Rows.
    pub rows: u64,
    /// Bytes at the declared flat width.
    pub flat_bytes: u64,
    /// Resident bytes (packed when packing pays, flat otherwise).
    pub packed_bytes: u64,
}

impl ColumnCompression {
    /// Average resident bits per value, headers included.
    pub fn bits_per_value(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.packed_bytes as f64 * 8.0 / self.rows as f64
        }
    }
}

/// A table's compression summary; shard reports merge with
/// [`TableCompression::merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableCompression {
    /// Table name.
    pub table: String,
    /// Rows.
    pub rows: u64,
    /// Per-column breakdown.
    pub columns: Vec<ColumnCompression>,
}

impl TableCompression {
    /// The report for one table.
    pub fn of(table: &str, t: &Table) -> TableCompression {
        TableCompression {
            table: table.to_string(),
            rows: t.rows() as u64,
            columns: t
                .columns
                .iter()
                .map(|c| ColumnCompression {
                    name: c.name.clone(),
                    rows: c.data.len() as u64,
                    flat_bytes: c.bytes(),
                    packed_bytes: c.resident_bytes(),
                })
                .collect(),
        }
    }

    /// Total bytes at the declared flat widths.
    pub fn flat_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.flat_bytes).sum()
    }

    /// Total resident bytes.
    pub fn packed_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.packed_bytes).sum()
    }

    /// Flat-to-resident compression ratio (1.0 for an empty table).
    pub fn ratio(&self) -> f64 {
        if self.packed_bytes() == 0 {
            1.0
        } else {
            self.flat_bytes() as f64 / self.packed_bytes() as f64
        }
    }

    /// Folds another shard's report for the same table into this one
    /// (summing rows and bytes column-wise).
    ///
    /// # Panics
    ///
    /// Panics if the schemas disagree.
    pub fn merge(&mut self, other: &TableCompression) {
        assert_eq!(self.table, other.table, "table mismatch");
        assert_eq!(self.columns.len(), other.columns.len(), "schema mismatch");
        self.rows += other.rows;
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            assert_eq!(dst.name, src.name, "schema mismatch");
            dst.rows += src.rows;
            dst.flat_bytes += src.flat_bytes;
            dst.packed_bytes += src.packed_bytes;
        }
    }
}

/// Generates a deterministic database with roughly `orders_n × 4`
/// lineitem rows (dbgen proportions: customer = orders/10, part =
/// orders/7.5, supplier = orders/100).
pub fn generate(orders_n: usize, seed: u64) -> TpchDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let customers_n = (orders_n / 10).max(5);
    let parts_n = (orders_n * 2 / 15).max(5);
    let suppliers_n = (orders_n / 100).max(3);

    // region / nation.
    let region = Table::new(vec![Column::i32("r_regionkey", (0..5).collect())]);
    let nation = Table::new(vec![
        Column::i32("n_nationkey", (0..25).collect()),
        Column::i32("n_regionkey", (0..25).map(|i| i % 5).collect()),
    ]);

    let customer = Table::new(vec![
        Column::i32("c_custkey", (0..customers_n as i64).collect()),
        Column::i32("c_nationkey", (0..customers_n).map(|_| rng.gen_range(0..25)).collect()),
        Column::i32("c_mktsegment", (0..customers_n).map(|_| rng.gen_range(0..5)).collect()),
    ]);

    let supplier = Table::new(vec![
        Column::i32("s_suppkey", (0..suppliers_n as i64).collect()),
        Column::i32("s_nationkey", (0..suppliers_n).map(|_| rng.gen_range(0..25)).collect()),
    ]);

    let part = Table::new(vec![
        Column::i32("p_partkey", (0..parts_n as i64).collect()),
        Column::i32("p_type", (0..parts_n).map(|_| rng.gen_range(0..150)).collect()),
    ]);

    let o_orderdate: Vec<i64> = (0..orders_n).map(|_| rng.gen_range(0..ORDER_DAYS)).collect();
    let orders = Table::new(vec![
        Column::i32("o_orderkey", (0..orders_n as i64).collect()),
        Column::i32(
            "o_custkey",
            (0..orders_n).map(|_| rng.gen_range(0..customers_n as i64)).collect(),
        ),
        Column::i32("o_orderdate", o_orderdate.clone()),
        Column::i32("o_totalprice", (0..orders_n).map(|_| rng.gen_range(1_000..500_000)).collect()),
    ]);

    // lineitem: 1..7 lines per order (mean 4, as dbgen).
    let mut l_orderkey = Vec::new();
    let mut l_partkey = Vec::new();
    let mut l_suppkey = Vec::new();
    let mut l_quantity = Vec::new();
    let mut l_extendedprice = Vec::new();
    let mut l_discount = Vec::new();
    let mut l_tax = Vec::new();
    let mut l_returnflag = Vec::new();
    let mut l_linestatus = Vec::new();
    let mut l_shipdate = Vec::new();
    let mut l_receiptdate = Vec::new();
    let mut l_shipmode = Vec::new();
    for (ok, &odate) in o_orderdate.iter().enumerate() {
        for _ in 0..rng.gen_range(1..=7) {
            l_orderkey.push(ok as i64);
            l_partkey.push(rng.gen_range(0..parts_n as i64));
            l_suppkey.push(rng.gen_range(0..suppliers_n as i64));
            l_quantity.push(rng.gen_range(1..=50));
            l_extendedprice.push(rng.gen_range(100..100_000));
            l_discount.push(rng.gen_range(0..=10)); // percent
            l_tax.push(rng.gen_range(0..=8));
            let ship = odate + rng.gen_range(1..=121);
            l_shipdate.push(ship);
            l_receiptdate.push(ship + rng.gen_range(1..=30));
            l_returnflag.push(rng.gen_range(0..3));
            l_linestatus.push(rng.gen_range(0..2));
            l_shipmode.push(rng.gen_range(0..7));
        }
    }
    let lineitem = Table::new(vec![
        Column::i32("l_orderkey", l_orderkey),
        Column::i32("l_partkey", l_partkey),
        Column::i32("l_suppkey", l_suppkey),
        Column::i32("l_quantity", l_quantity),
        Column::i32("l_extendedprice", l_extendedprice),
        Column::i32("l_discount", l_discount),
        Column::i32("l_tax", l_tax),
        Column::i32("l_returnflag", l_returnflag),
        Column::i32("l_linestatus", l_linestatus),
        Column::i32("l_shipdate", l_shipdate),
        Column::i32("l_receiptdate", l_receiptdate),
        Column::i32("l_shipmode", l_shipmode),
    ]);

    let mut db = TpchDb { lineitem, orders, customer, part, supplier, nation, region };
    db.encode_packed();
    db
}

/// The generator's stream position after `draws` values: SplitMix64
/// jumps in O(1) and every integer `gen_range` consumes exactly one
/// `next_u64` (pinned by the vendored rand's tests), so a chunk can
/// start mid-stream and reproduce the sequential draws exactly.
fn rng_at(seed: u64, draws: u64) -> StdRng {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.advance(draws);
    rng
}

/// One generated column, chunked on the pool: each chunk jumps to its
/// stream offset (`base` + one draw per earlier value) and the chunks
/// concatenate in input order, reproducing the sequential column
/// bit-for-bit.
fn gen_column<F>(pool: Pool, n: usize, chunks: usize, seed: u64, base: u64, f: F) -> Vec<i64>
where
    F: Fn(&mut StdRng) -> i64 + Sync,
{
    pool.par_map(chunk_bounds(n, chunks), |(lo, hi)| {
        let mut rng = rng_at(seed, base + lo as u64);
        (lo..hi).map(|_| f(&mut rng)).collect::<Vec<i64>>()
    })
    .concat()
}

/// [`generate`] with the host's global pool: the exact sequential
/// routine at one thread, [`generate_chunked_on`] with `2 × threads`
/// chunks otherwise. Either way the result is bit-identical to
/// [`generate`] — thread count never changes data.
pub fn generate_parallel(orders_n: usize, seed: u64) -> TpchDb {
    let pool = Pool::global();
    if pool.threads() <= 1 || dpu_pool::in_worker() {
        generate(orders_n, seed)
    } else {
        generate_chunked_on(pool, orders_n, seed, pool.threads() * 2)
    }
}

/// Chunked [`generate`] on one thread — for pinning that the chunk
/// decomposition itself (independent of any pool) reproduces the
/// sequential stream.
pub fn generate_chunked(orders_n: usize, seed: u64, chunks: usize) -> TpchDb {
    generate_chunked_on(Pool::new(1), orders_n, seed, chunks)
}

/// Chunked, pool-parallel [`generate`]: bit-identical output for any
/// `pool` width and any `chunks ≥ 1`.
///
/// Each column family knows its draw offset in the sequential stream
/// (tpchgen-style per-chunk derived state, here via SplitMix64's O(1)
/// jump). The variable-length lineitem table needs a cheap sequential
/// pre-pass over the per-order line-count draws to locate each chunk's
/// stream offset and row offset; the 11-draws-per-line bodies — the
/// bulk of the work — then generate in parallel.
pub fn generate_chunked_on(pool: Pool, orders_n: usize, seed: u64, chunks: usize) -> TpchDb {
    let chunks = chunks.max(1);
    let customers_n = (orders_n / 10).max(5);
    let parts_n = (orders_n * 2 / 15).max(5);
    let suppliers_n = (orders_n / 100).max(3);

    // Draw offsets of each column family in `generate`'s stream.
    let c_nat_at = 0u64;
    let c_mkt_at = c_nat_at + customers_n as u64;
    let s_nat_at = c_mkt_at + customers_n as u64;
    let p_type_at = s_nat_at + suppliers_n as u64;
    let o_date_at = p_type_at + parts_n as u64;
    let o_cust_at = o_date_at + orders_n as u64;
    let o_price_at = o_cust_at + orders_n as u64;
    let line_at = o_price_at + orders_n as u64;

    let region = Table::new(vec![Column::i32("r_regionkey", (0..5).collect())]);
    let nation = Table::new(vec![
        Column::i32("n_nationkey", (0..25).collect()),
        Column::i32("n_regionkey", (0..25).map(|i| i % 5).collect()),
    ]);

    let customer = Table::new(vec![
        Column::i32("c_custkey", (0..customers_n as i64).collect()),
        Column::i32(
            "c_nationkey",
            gen_column(pool, customers_n, chunks, seed, c_nat_at, |rng| rng.gen_range(0..25)),
        ),
        Column::i32(
            "c_mktsegment",
            gen_column(pool, customers_n, chunks, seed, c_mkt_at, |rng| rng.gen_range(0..5)),
        ),
    ]);

    let supplier = Table::new(vec![
        Column::i32("s_suppkey", (0..suppliers_n as i64).collect()),
        Column::i32(
            "s_nationkey",
            gen_column(pool, suppliers_n, chunks, seed, s_nat_at, |rng| rng.gen_range(0..25)),
        ),
    ]);

    let part = Table::new(vec![
        Column::i32("p_partkey", (0..parts_n as i64).collect()),
        Column::i32(
            "p_type",
            gen_column(pool, parts_n, chunks, seed, p_type_at, |rng| rng.gen_range(0..150)),
        ),
    ]);

    let o_orderdate =
        gen_column(pool, orders_n, chunks, seed, o_date_at, |rng| rng.gen_range(0..ORDER_DAYS));
    let orders = Table::new(vec![
        Column::i32("o_orderkey", (0..orders_n as i64).collect()),
        Column::i32(
            "o_custkey",
            gen_column(pool, orders_n, chunks, seed, o_cust_at, |rng| {
                rng.gen_range(0..customers_n as i64)
            }),
        ),
        Column::i32("o_orderdate", o_orderdate.clone()),
        Column::i32(
            "o_totalprice",
            gen_column(pool, orders_n, chunks, seed, o_price_at, |rng| {
                rng.gen_range(1_000..500_000)
            }),
        ),
    ]);

    // Lineitem pre-pass: replay only the per-order count draws (jumping
    // the 11 body draws per line) to find each order's stream offset
    // relative to `line_at`. Sequential but ~50× cheaper than full
    // generation.
    let mut offs: Vec<u64> = Vec::with_capacity(orders_n + 1);
    {
        let mut rng = rng_at(seed, line_at);
        let mut off = 0u64;
        for _ in 0..orders_n {
            offs.push(off);
            let count: u64 = rng.gen_range(1..=7);
            rng.advance(11 * count);
            off += 1 + 11 * count;
        }
        offs.push(off);
    }

    // Each chunk of orders replays the exact sequential lineitem loop
    // from its jumped-to stream position, emitting fragments of all 12
    // columns; fragments concatenate in chunk order.
    let frags = pool.par_map(chunk_bounds(orders_n, chunks), |(lo, hi)| {
        let mut rng = rng_at(seed, line_at + offs[lo]);
        let mut cols: [Vec<i64>; 12] = Default::default();
        for (ok, &odate) in o_orderdate.iter().enumerate().take(hi).skip(lo) {
            for _ in 0..rng.gen_range(1..=7) {
                cols[0].push(ok as i64);
                cols[1].push(rng.gen_range(0..parts_n as i64));
                cols[2].push(rng.gen_range(0..suppliers_n as i64));
                cols[3].push(rng.gen_range(1..=50));
                cols[4].push(rng.gen_range(100..100_000));
                cols[5].push(rng.gen_range(0..=10));
                cols[6].push(rng.gen_range(0..=8));
                let ship = odate + rng.gen_range(1..=121);
                cols[9].push(ship);
                cols[10].push(ship + rng.gen_range(1..=30));
                cols[7].push(rng.gen_range(0..3));
                cols[8].push(rng.gen_range(0..2));
                cols[11].push(rng.gen_range(0..7));
            }
        }
        cols
    });
    const LINE_COLS: [&str; 12] = [
        "l_orderkey",
        "l_partkey",
        "l_suppkey",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_tax",
        "l_returnflag",
        "l_linestatus",
        "l_shipdate",
        "l_receiptdate",
        "l_shipmode",
    ];
    let lineitem = Table::new(
        LINE_COLS
            .iter()
            .enumerate()
            .map(|(slot, name)| {
                Column::i32(name, frags.iter().flat_map(|f| f[slot].iter().copied()).collect())
            })
            .collect(),
    );

    let mut db = TpchDb { lineitem, orders, customer, part, supplier, nation, region };
    db.encode_packed();
    db
}

/// Finishes a query's cost with the commercial-engine factor applied to
/// the baseline.
fn finish_db(acc: &CostAcc, xeon: &Xeon) -> QueryCost {
    let mut c = acc.finish(xeon);
    c.xeon.seconds /= XEON_DB_EFFICIENCY;
    c
}

// Scans stream *resident* bytes on both platforms: the DPU engine and
// the commercial in-memory columnar baseline both keep columns
// compressed, and both are memory-bound on scans, so packing shifts
// absolute times, not the Figure 16 ratios.
fn col_bytes(t: &Table, names: &[&str]) -> u64 {
    names.iter().map(|n| t.column(n).expect("column").resident_bytes()).sum()
}

/// Adds the cost of partitioning + probing a join to `acc` — the
/// partition-rounds planner sees the build side at full scale. Public so
/// the rack-scale coordinator can cost per-shard join phases with the
/// same model.
pub fn join_cost(acc: &mut CostAcc, build_rows: u64, probe_rows: u64, cols_bytes: u64) {
    let plan = GroupByPlan::plan((build_rows * acc.scale()).max(1), 16);
    acc.stream(cols_bytes * plan.dpu_bytes_factor(), cols_bytes * plan.xeon_bytes_factor());
    acc.compute(build_rows, PROBE_DPU, PROBE_XEON);
    acc.compute(probe_rows, PROBE_DPU, PROBE_XEON);
}

/// Q1: pricing summary report (scan + 2-group aggregate).
pub fn q1(db: &TpchDb, xeon: &Xeon, scale: u64) -> (Table, QueryCost) {
    let cutoff = ORDER_DAYS - 90;
    let sel = FilterSpec::new("l_shipdate", CompareOp::Le(cutoff)).apply(&db.lineitem);
    let spec = GroupBySpec {
        group_cols: vec!["l_returnflag".into(), "l_linestatus".into()],
        aggs: vec![
            ("sum_qty".into(), AggFunc::Sum("l_quantity".into())),
            ("sum_base_price".into(), AggFunc::Sum("l_extendedprice".into())),
            (
                "sum_disc_price".into(),
                AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()),
            ),
            ("count_order".into(), AggFunc::Count),
        ],
    };
    let out = spec.execute(&db.lineitem, Some(&sel));

    let rows = db.lineitem.rows() as u64;
    let mut acc = CostAcc::with_scale(scale);
    acc.stream_both(col_bytes(
        &db.lineitem,
        &[
            "l_shipdate",
            "l_returnflag",
            "l_linestatus",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
        ],
    ));
    acc.compute(rows, SCAN_DPU, SCAN_XEON);
    acc.compute(sel.count() as u64, AGG_DPU, AGG_XEON);
    (out, finish_db(&acc, xeon))
}

/// Q3: shipping-priority (3-table join, group, top-10).
pub fn q3(db: &TpchDb, xeon: &Xeon, scale: u64) -> (Table, QueryCost) {
    let seg_sel = FilterSpec::new("c_mktsegment", CompareOp::Eq(1)).apply(&db.customer);
    let cust = select_rows(&db.customer, &seg_sel);
    let ord_sel = FilterSpec::new("o_orderdate", CompareOp::Lt(D_1995)).apply(&db.orders);
    let ord = select_rows(&db.orders, &ord_sel);
    let li_sel = FilterSpec::new("l_shipdate", CompareOp::Gt(D_1995)).apply(&db.lineitem);
    let li = select_rows(&db.lineitem, &li_sel);

    let j1 = HashJoin {
        build_key: "c_custkey".into(),
        probe_key: "o_custkey".into(),
        build_cols: vec![],
        probe_cols: vec!["o_orderkey".into(), "o_orderdate".into()],
    };
    let (co, _) = j1.execute(&cust, &ord, 32);
    let j2 = HashJoin {
        build_key: "o_orderkey".into(),
        probe_key: "l_orderkey".into(),
        build_cols: vec!["o_orderdate".into()],
        probe_cols: vec!["l_orderkey".into(), "l_extendedprice".into(), "l_discount".into()],
    };
    let (col, _) = j2.execute(&co, &li, 32);
    let spec = GroupBySpec {
        group_cols: vec!["l_orderkey".into(), "o_orderdate".into()],
        aggs: vec![(
            "revenue".into(),
            AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()),
        )],
    };
    let grouped = spec.execute(&col, None);
    let top = top_k(&grouped, "revenue", 10.min(grouped.rows().max(1)), 32);
    let out = project_rows(&grouped, &top);

    let mut acc = CostAcc::with_scale(scale);
    acc.stream_both(col_bytes(&db.customer, &["c_custkey", "c_mktsegment"]));
    acc.stream_both(col_bytes(&db.orders, &["o_orderkey", "o_custkey", "o_orderdate"]));
    acc.stream_both(col_bytes(
        &db.lineitem,
        &["l_orderkey", "l_shipdate", "l_extendedprice", "l_discount"],
    ));
    acc.compute(
        (db.customer.rows() + db.orders.rows() + db.lineitem.rows()) as u64,
        SCAN_DPU,
        SCAN_XEON,
    );
    join_cost(
        &mut acc,
        cust.rows() as u64,
        ord.rows() as u64,
        col_bytes(&db.orders, &["o_custkey"]),
    );
    join_cost(
        &mut acc,
        co.rows() as u64,
        li.rows() as u64,
        col_bytes(&db.lineitem, &["l_orderkey"]),
    );
    acc.compute(col.rows() as u64, AGG_DPU, AGG_XEON);
    (out, finish_db(&acc, xeon))
}

/// Q5: local-supplier volume (6-table join).
pub fn q5(db: &TpchDb, xeon: &Xeon, scale: u64) -> (Table, QueryCost) {
    // region 0 → nations in region 0 → customers/suppliers there.
    let nat_sel = FilterSpec::new("n_regionkey", CompareOp::Eq(0)).apply(&db.nation);
    let nations = select_rows(&db.nation, &nat_sel);
    let j_cn = HashJoin {
        build_key: "n_nationkey".into(),
        probe_key: "c_nationkey".into(),
        build_cols: vec!["n_nationkey".into()],
        probe_cols: vec!["c_custkey".into()],
    };
    let (cn, _) = j_cn.execute(&nations, &db.customer, 8);
    let ord_sel =
        FilterSpec::new("o_orderdate", CompareOp::Between(D_1995, D_1995 + 365)).apply(&db.orders);
    let ord = select_rows(&db.orders, &ord_sel);
    let j_co = HashJoin {
        build_key: "c_custkey".into(),
        probe_key: "o_custkey".into(),
        build_cols: vec!["n_nationkey".into()],
        probe_cols: vec!["o_orderkey".into()],
    };
    let (co, _) = j_co.execute(&cn, &ord, 32);
    let j_ol = HashJoin {
        build_key: "o_orderkey".into(),
        probe_key: "l_orderkey".into(),
        build_cols: vec!["n_nationkey".into()],
        probe_cols: vec!["l_suppkey".into(), "l_extendedprice".into(), "l_discount".into()],
    };
    let (ol, _) = j_ol.execute(&co, &db.lineitem, 32);
    // Supplier must be in the same nation as the customer.
    let j_s = HashJoin {
        build_key: "s_suppkey".into(),
        probe_key: "l_suppkey".into(),
        build_cols: vec!["s_nationkey".into()],
        probe_cols: vec!["n_nationkey".into(), "l_extendedprice".into(), "l_discount".into()],
    };
    let (ols, _) = j_s.execute(&db.supplier, &ol, 8);
    let same = crate::bitvec::BitVec::from_fn(ols.rows(), |r| {
        ols.column("s_nationkey").unwrap().data[r] == ols.column("n_nationkey").unwrap().data[r]
    });
    let spec = GroupBySpec {
        group_cols: vec!["n_nationkey".into()],
        aggs: vec![(
            "revenue".into(),
            AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()),
        )],
    };
    let out = spec.execute(&ols, Some(&same));

    let mut acc = CostAcc::with_scale(scale);
    acc.stream_both(
        col_bytes(&db.customer, &["c_custkey", "c_nationkey"])
            + col_bytes(&db.orders, &["o_orderkey", "o_custkey", "o_orderdate"])
            + col_bytes(
                &db.lineitem,
                &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
            )
            + col_bytes(&db.supplier, &["s_suppkey", "s_nationkey"]),
    );
    acc.compute(
        (db.customer.rows() + db.orders.rows() + db.lineitem.rows()) as u64,
        SCAN_DPU,
        SCAN_XEON,
    );
    join_cost(&mut acc, cn.rows() as u64, ord.rows() as u64, col_bytes(&db.orders, &["o_custkey"]));
    join_cost(
        &mut acc,
        co.rows() as u64,
        db.lineitem.rows() as u64,
        col_bytes(&db.lineitem, &["l_orderkey"]),
    );
    join_cost(&mut acc, db.supplier.rows() as u64, ol.rows() as u64, 4 * ol.rows() as u64);
    acc.compute(ols.rows() as u64, AGG_DPU, AGG_XEON);
    (out, finish_db(&acc, xeon))
}

/// Q6: revenue-change forecast (pure scan-filter-aggregate).
pub fn q6(db: &TpchDb, xeon: &Xeon, scale: u64) -> (i64, QueryCost) {
    let li = &db.lineitem;
    let a = FilterSpec::new("l_shipdate", CompareOp::Between(D_1995, D_1995 + 364)).apply(li);
    let b = FilterSpec::new("l_discount", CompareOp::Between(5, 7)).apply(li);
    let c = FilterSpec::new("l_quantity", CompareOp::Lt(24)).apply(li);
    let sel = a.and(&b).and(&c);
    let ep = &li.column("l_extendedprice").unwrap().data;
    let di = &li.column("l_discount").unwrap().data;
    let revenue: i64 = sel.iter_set().map(|r| ep[r] * di[r]).sum();

    let mut acc = CostAcc::with_scale(scale);
    acc.stream_both(col_bytes(li, &["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"]));
    // Three FILT passes and the select-sum.
    acc.compute(3 * li.rows() as u64, SCAN_DPU, SCAN_XEON);
    acc.compute(sel.count() as u64, 3.0, 1.0);
    (revenue, finish_db(&acc, xeon))
}

/// Q10: returned-item reporting (join + group + top-20).
pub fn q10(db: &TpchDb, xeon: &Xeon, scale: u64) -> (Table, QueryCost) {
    let ord_sel =
        FilterSpec::new("o_orderdate", CompareOp::Between(D_1995, D_1995 + 90)).apply(&db.orders);
    let ord = select_rows(&db.orders, &ord_sel);
    let li_sel = FilterSpec::new("l_returnflag", CompareOp::Eq(2)).apply(&db.lineitem);
    let li = select_rows(&db.lineitem, &li_sel);
    let j = HashJoin {
        build_key: "o_orderkey".into(),
        probe_key: "l_orderkey".into(),
        build_cols: vec!["o_custkey".into()],
        probe_cols: vec!["l_extendedprice".into(), "l_discount".into()],
    };
    let (ol, _) = j.execute(&ord, &li, 32);
    let spec = GroupBySpec {
        group_cols: vec!["o_custkey".into()],
        aggs: vec![(
            "revenue".into(),
            AggFunc::SumProduct("l_extendedprice".into(), "l_discount".into()),
        )],
    };
    let grouped = spec.execute(&ol, None);
    let top = top_k(&grouped, "revenue", 20.min(grouped.rows().max(1)), 32);
    let out = project_rows(&grouped, &top);

    let mut acc = CostAcc::with_scale(scale);
    acc.stream_both(
        col_bytes(&db.orders, &["o_orderkey", "o_custkey", "o_orderdate"])
            + col_bytes(
                &db.lineitem,
                &["l_orderkey", "l_returnflag", "l_extendedprice", "l_discount"],
            ),
    );
    acc.compute((db.orders.rows() + db.lineitem.rows()) as u64, SCAN_DPU, SCAN_XEON);
    join_cost(
        &mut acc,
        ord.rows() as u64,
        li.rows() as u64,
        col_bytes(&db.lineitem, &["l_orderkey"]) / 4,
    );
    acc.compute(ol.rows() as u64, AGG_DPU, AGG_XEON);
    (out, finish_db(&acc, xeon))
}

/// Q12: shipping-mode priority (join + group by shipmode).
pub fn q12(db: &TpchDb, xeon: &Xeon, scale: u64) -> (Table, QueryCost) {
    let sel_mode = FilterSpec::new("l_shipmode", CompareOp::Between(2, 3)).apply(&db.lineitem);
    let sel_date = FilterSpec::new("l_receiptdate", CompareOp::Between(D_1995, D_1995 + 364))
        .apply(&db.lineitem);
    let sel = sel_mode.and(&sel_date);
    let li = select_rows(&db.lineitem, &sel);
    let j = HashJoin {
        build_key: "o_orderkey".into(),
        probe_key: "l_orderkey".into(),
        build_cols: vec![],
        probe_cols: vec!["l_shipmode".into()],
    };
    let (ol, _) = j.execute(&db.orders, &li, 32);
    let spec = GroupBySpec {
        group_cols: vec!["l_shipmode".into()],
        aggs: vec![("line_count".into(), AggFunc::Count)],
    };
    let out = spec.execute(&ol, None);

    let mut acc = CostAcc::with_scale(scale);
    acc.stream_both(
        col_bytes(&db.lineitem, &["l_orderkey", "l_shipmode", "l_receiptdate"])
            + col_bytes(&db.orders, &["o_orderkey"]),
    );
    acc.compute((2 * db.lineitem.rows()) as u64, SCAN_DPU, SCAN_XEON);
    join_cost(
        &mut acc,
        db.orders.rows() as u64,
        li.rows() as u64,
        col_bytes(&db.orders, &["o_orderkey"]),
    );
    acc.compute(ol.rows() as u64, AGG_DPU, AGG_XEON);
    (out, finish_db(&acc, xeon))
}

/// Q14: promotion effect (join lineitem × part over one month).
pub fn q14(db: &TpchDb, xeon: &Xeon, scale: u64) -> ((i64, i64), QueryCost) {
    let sel =
        FilterSpec::new("l_shipdate", CompareOp::Between(D_1995, D_1995 + 29)).apply(&db.lineitem);
    let li = select_rows(&db.lineitem, &sel);
    let j = HashJoin {
        build_key: "p_partkey".into(),
        probe_key: "l_partkey".into(),
        build_cols: vec!["p_type".into()],
        probe_cols: vec!["l_extendedprice".into(), "l_discount".into()],
    };
    let (lp, _) = j.execute(&db.part, &li, 32);
    let ty = &lp.column("p_type").unwrap().data;
    let ep = &lp.column("l_extendedprice").unwrap().data;
    let di = &lp.column("l_discount").unwrap().data;
    let mut promo = 0i64;
    let mut total = 0i64;
    for r in 0..lp.rows() {
        let rev = ep[r] * (100 - di[r]);
        total += rev;
        if ty[r] < 30 {
            promo += rev; // "PROMO%" types
        }
    }

    let mut acc = CostAcc::with_scale(scale);
    acc.stream_both(
        col_bytes(&db.lineitem, &["l_partkey", "l_shipdate", "l_extendedprice", "l_discount"])
            + col_bytes(&db.part, &["p_partkey", "p_type"]),
    );
    acc.compute(db.lineitem.rows() as u64, SCAN_DPU, SCAN_XEON);
    join_cost(
        &mut acc,
        db.part.rows() as u64,
        li.rows() as u64,
        col_bytes(&db.part, &["p_partkey"]),
    );
    acc.compute(lp.rows() as u64, 6.0, 3.0);
    ((promo, total), finish_db(&acc, xeon))
}

/// Q18: large-volume customers (group-having + join + top-100).
pub fn q18(db: &TpchDb, xeon: &Xeon, scale: u64) -> (Table, QueryCost) {
    let spec = GroupBySpec {
        group_cols: vec!["l_orderkey".into()],
        aggs: vec![("sum_qty".into(), AggFunc::Sum("l_quantity".into()))],
    };
    let per_order = spec.execute(&db.lineitem, None);
    let big = FilterSpec::new("sum_qty", CompareOp::Gt(180)).apply(&per_order);
    let big_orders = select_rows(&per_order, &big);
    let j = HashJoin {
        build_key: "l_orderkey".into(),
        probe_key: "o_orderkey".into(),
        build_cols: vec!["sum_qty".into()],
        probe_cols: vec!["o_orderkey".into(), "o_custkey".into(), "o_totalprice".into()],
    };
    let (jo, _) = j.execute(&big_orders, &db.orders, 32);
    // Canonical order (ascending orderkey) so top-k tie-breaks depend on
    // content rather than join emission order — required for shard-merge
    // plans to reproduce this result bit-identically.
    let mut order: Vec<usize> = (0..jo.rows()).collect();
    order.sort_by_key(|&r| jo.column("o_orderkey").unwrap().data[r]);
    let jo = project_rows(&jo, &order);
    let top = top_k(&jo, "o_totalprice", 100.min(jo.rows().max(1)), 32);
    let out = project_rows(&jo, &top);

    let mut acc = CostAcc::with_scale(scale);
    acc.stream_both(col_bytes(&db.lineitem, &["l_orderkey", "l_quantity"]));
    // The big group-by: NDV = order count (at full scale).
    let plan = GroupByPlan::plan(db.orders.rows() as u64 * scale, 16);
    let gb_bytes = col_bytes(&db.lineitem, &["l_orderkey", "l_quantity"]);
    acc.stream(gb_bytes * (plan.dpu_bytes_factor() - 1), gb_bytes * (plan.xeon_bytes_factor() - 1));
    acc.compute(db.lineitem.rows() as u64, AGG_DPU, AGG_XEON);
    join_cost(
        &mut acc,
        big_orders.rows() as u64,
        db.orders.rows() as u64,
        col_bytes(&db.orders, &["o_orderkey", "o_totalprice"]),
    );
    (out, finish_db(&acc, xeon))
}

/// Materializes selected rows into a new table.
pub fn select_rows(t: &Table, sel: &crate::bitvec::BitVec) -> Table {
    Table::new(
        t.columns
            .iter()
            .map(|c| Column {
                name: c.name.clone(),
                width: c.width,
                data: sel.iter_set().map(|r| c.data[r]).collect(),
                packed: None,
            })
            .collect(),
    )
}

/// Projects rows by index into a new table.
pub fn project_rows(t: &Table, rows: &[usize]) -> Table {
    Table::new(
        t.columns
            .iter()
            .map(|c| Column {
                name: c.name.clone(),
                width: c.width,
                data: rows.iter().map(|&r| c.data[r]).collect(),
                packed: None,
            })
            .collect(),
    )
}

/// Runs all eight queries, returning `(name, gain)` pairs plus the
/// geometric mean (Figure 16).
pub fn run_all(db: &TpchDb, xeon: &Xeon, scale: u64) -> (Vec<(&'static str, f64)>, f64) {
    let gains = vec![
        ("Q1", q1(db, xeon, scale).1.gain(xeon)),
        ("Q3", q3(db, xeon, scale).1.gain(xeon)),
        ("Q5", q5(db, xeon, scale).1.gain(xeon)),
        ("Q6", q6(db, xeon, scale).1.gain(xeon)),
        ("Q10", q10(db, xeon, scale).1.gain(xeon)),
        ("Q12", q12(db, xeon, scale).1.gain(xeon)),
        ("Q14", q14(db, xeon, scale).1.gain(xeon)),
        ("Q18", q18(db, xeon, scale).1.gain(xeon)),
    ];
    let geomean = (gains.iter().map(|(_, g)| g.ln()).sum::<f64>() / gains.len() as f64).exp();
    (gains, geomean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TpchDb {
        generate(2000, 42)
    }

    #[test]
    fn generator_shapes() {
        let db = db();
        assert_eq!(db.orders.rows(), 2000);
        assert!(db.lineitem.rows() > 4000 && db.lineitem.rows() < 16000);
        assert_eq!(db.nation.rows(), 25);
        assert_eq!(db.region.rows(), 5);
        // Deterministic for a seed.
        let db2 = generate(2000, 42);
        assert_eq!(db.lineitem, db2.lineitem);
        // Different for another seed.
        let db3 = generate(2000, 43);
        assert_ne!(db.lineitem, db3.lineitem);
    }

    #[test]
    fn chunked_generation_is_bit_identical_to_sequential() {
        for orders_n in [1usize, 7, 100, 2000] {
            let want = generate(orders_n, 42);
            for chunks in [1usize, 2, 3, 7, 64] {
                assert_eq!(
                    generate_chunked(orders_n, 42, chunks),
                    want,
                    "orders_n={orders_n} chunks={chunks}"
                );
            }
            for workers in [2usize, 4] {
                assert_eq!(
                    generate_chunked_on(Pool::new(workers), orders_n, 42, workers * 2),
                    want,
                    "orders_n={orders_n} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn parallel_generation_matches_sequential() {
        // Pool width comes from the host here, so exercise both routes
        // explicitly via generate_chunked_on; generate_parallel itself
        // must agree with generate whatever the host's width is.
        assert_eq!(generate_parallel(500, 7), generate(500, 7));
    }

    #[test]
    fn q1_matches_naive_reference() {
        let db = db();
        let xeon = Xeon::new();
        let (out, cost) = q1(&db, &xeon, 1);
        // Naive reference for one group.
        let li = &db.lineitem;
        let cutoff = ORDER_DAYS - 90;
        let mut want_cnt = 0i64;
        let mut want_qty = 0i64;
        for r in 0..li.rows() {
            if li.column("l_shipdate").unwrap().data[r] <= cutoff
                && li.column("l_returnflag").unwrap().data[r] == 0
                && li.column("l_linestatus").unwrap().data[r] == 0
            {
                want_cnt += 1;
                want_qty += li.column("l_quantity").unwrap().data[r];
            }
        }
        let row = (0..out.rows())
            .find(|&r| {
                out.column("l_returnflag").unwrap().data[r] == 0
                    && out.column("l_linestatus").unwrap().data[r] == 0
            })
            .expect("group (0,0) exists");
        assert_eq!(out.column("count_order").unwrap().data[row], want_cnt);
        assert_eq!(out.column("sum_qty").unwrap().data[row], want_qty);
        assert!(cost.dpu.seconds > 0.0 && cost.xeon.seconds > 0.0);
    }

    #[test]
    fn q6_matches_naive_reference() {
        let db = db();
        let xeon = Xeon::new();
        let (rev, cost) = q6(&db, &xeon, 1);
        let li = &db.lineitem;
        let mut want = 0i64;
        for r in 0..li.rows() {
            let sd = li.column("l_shipdate").unwrap().data[r];
            let d = li.column("l_discount").unwrap().data[r];
            let q = li.column("l_quantity").unwrap().data[r];
            if (D_1995..=D_1995 + 364).contains(&sd) && (5..=7).contains(&d) && q < 24 {
                want += li.column("l_extendedprice").unwrap().data[r] * d;
            }
        }
        assert_eq!(rev, want);
        assert!(rev > 0, "the band should select something");
        // A pure scan against the commercial engine: the 6.7×
        // bandwidth/watt ratio divided by the engine's ~0.5 efficiency.
        let g = cost.gain(&xeon);
        assert!((11.0..16.0).contains(&g), "Q6 gain {g:.2}");
    }

    #[test]
    fn q3_returns_descending_revenue() {
        let db = db();
        let xeon = Xeon::new();
        let (out, _) = q3(&db, &xeon, 1);
        let rev = &out.column("revenue").unwrap().data;
        assert!(!rev.is_empty());
        assert!(rev.windows(2).all(|w| w[0] >= w[1]), "top-k order");
    }

    #[test]
    fn q14_fraction_is_sane() {
        let db = db();
        let xeon = Xeon::new();
        let ((promo, total), _) = q14(&db, &xeon, 1);
        assert!(total > 0);
        assert!(promo >= 0 && promo <= total);
        // p_type < 30 of 150 ⇒ roughly 20% of revenue.
        let frac = promo as f64 / total as f64;
        assert!((0.08..0.35).contains(&frac), "promo fraction {frac}");
    }

    #[test]
    fn q18_orders_have_large_quantities() {
        let db = db();
        let xeon = Xeon::new();
        let (out, _) = q18(&db, &xeon, 1);
        for r in 0..out.rows() {
            assert!(out.column("sum_qty").unwrap().data[r] > 180);
        }
    }

    #[test]
    fn all_gains_exceed_one_and_geomean_is_large() {
        let db = db();
        let xeon = Xeon::new();
        // Cost at TPC-H SF≈100 cardinalities (≈600 M lineitem rows).
        let (gains, geomean) = run_all(&db, &xeon, 50_000);
        assert_eq!(gains.len(), 8);
        for (name, g) in &gains {
            assert!(*g > 1.0, "{name} gain {g:.2} ≤ 1");
            assert!(*g < 35.0, "{name} gain {g:.2} implausible");
        }
        assert!(
            geomean > 10.0 && geomean < 25.0,
            "geomean {geomean:.2} out of the Figure 16 band around 15×"
        );
    }

    #[test]
    fn scale_raises_join_heavy_gains_only() {
        let db = db();
        let xeon = Xeon::new();
        // Q6 is a pure scan: scale-invariant. Q3 joins: partitioning
        // rounds appear at scale and widen the DPU's advantage.
        let q6_small = q6(&db, &xeon, 1).1.gain(&xeon);
        let q6_big = q6(&db, &xeon, 50_000).1.gain(&xeon);
        assert!((q6_small - q6_big).abs() < 0.2);
        let q3_small = q3(&db, &xeon, 1).1.gain(&xeon);
        let q3_big = q3(&db, &xeon, 50_000).1.gain(&xeon);
        assert!(q3_big > q3_small + 0.5, "Q3 {q3_small:.2} → {q3_big:.2}");
    }
}
