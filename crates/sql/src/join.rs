//! Partitioned hash join.
//!
//! §5.3: "We also implemented other SQL operations like Join and Top-k
//! using partitioning techniques similar to those described above" — both
//! sides are hash-partitioned (DMS hardware + software rounds) until each
//! build-side partition's hash table fits DMEM, then each dpCore builds
//! and probes its partition independently.

use std::collections::HashMap;

use dpu_isa::hash::crc32c_u64;
use dpu_pool::{chunk_bounds, in_worker, Pool};

use crate::column::{pack, Column, Table};
use crate::vector::{self, Kernel};
use crate::PAR_MIN_ROWS;

/// An equi-join of two tables.
#[derive(Debug, Clone)]
pub struct HashJoin {
    /// Build-side key column name.
    pub build_key: String,
    /// Probe-side key column name.
    pub probe_key: String,
    /// Columns to project from the build side (renamed as-is).
    pub build_cols: Vec<String>,
    /// Columns to project from the probe side.
    pub probe_cols: Vec<String>,
}

impl HashJoin {
    /// Executes the inner join with `fanout`-way CRC32 partitioning,
    /// returning the projected result and the largest build-partition
    /// entry count (for DMEM-budget assertions).
    ///
    /// Output rows appear in (partition, probe-order) order. Large
    /// inputs run on the global host pool ([`Self::execute_on`]); the
    /// result is bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if named columns are missing or `fanout` is zero.
    pub fn execute(&self, build: &Table, probe: &Table, fanout: u64) -> (Table, u64) {
        // Packed execution (`DPU_PACK`): unpack each side's referenced
        // columns (key + projections) in lane batches once, then run the
        // flat kernels unchanged — bit-identical results either way.
        let p = pack();
        let brefs: Vec<&str> = std::iter::once(self.build_key.as_str())
            .chain(self.build_cols.iter().map(String::as_str))
            .collect();
        let prefs: Vec<&str> = std::iter::once(self.probe_key.as_str())
            .chain(self.probe_cols.iter().map(String::as_str))
            .collect();
        let (bd, pd) = (build.decode_for(&brefs, p), probe.decode_for(&prefs, p));
        self.execute_flat(bd.as_ref().unwrap_or(build), pd.as_ref().unwrap_or(probe), fanout)
    }

    fn execute_flat(&self, build: &Table, probe: &Table, fanout: u64) -> (Table, u64) {
        let pool = Pool::global();
        if pool.threads() > 1
            && !in_worker()
            && fanout > 1
            && build.rows() + probe.rows() >= PAR_MIN_ROWS
        {
            self.execute_on(pool, build, probe, fanout)
        } else {
            self.execute_seq(build, probe, fanout)
        }
    }

    vector::kernel_entry! {
        /// The sequential join kernel (the exact pre-parallelism code
        /// path), partitioning with the process-wide kernel —
        /// bit-identical at any setting, since every CRC arm computes
        /// the same CRC32-C.
        ///
        /// # Panics
        ///
        /// Panics if named columns are missing or `fanout` is zero.
        pub fn execute_seq(&self, build: &Table, probe: &Table, fanout: u64) -> (Table, u64)
            => |kernel| self.execute_seq_with(build, probe, fanout, kernel)
    }

    /// [`Self::execute_seq`] with an explicit partitioning kernel, for
    /// differential tests and benches.
    ///
    /// # Panics
    ///
    /// Panics if named columns are missing or `fanout` is zero.
    pub fn execute_seq_with(
        &self,
        build: &Table,
        probe: &Table,
        fanout: u64,
        kernel: Kernel,
    ) -> (Table, u64) {
        assert!(fanout > 0, "fanout must be positive");
        let bk = build.col_index(&self.build_key);
        let pk = probe.col_index(&self.probe_key);

        // Partition row ids on both sides.
        let bparts = partition_row_ids_with(&build.columns[bk].data, 0, fanout, kernel);
        let pparts = partition_row_ids_with(&probe.columns[pk].data, 0, fanout, kernel);

        let bcols: Vec<usize> = self.build_cols.iter().map(|c| build.col_index(c)).collect();
        let pcols: Vec<usize> = self.probe_cols.iter().map(|c| probe.col_index(c)).collect();
        let mut out: Vec<Vec<i64>> = vec![Vec::new(); bcols.len() + pcols.len()];
        let mut max_build = 0u64;

        for p in 0..fanout as usize {
            // Build a per-partition table: key → build row ids (handles
            // duplicate build keys).
            let mut ht: HashMap<i64, Vec<usize>> = HashMap::new();
            for &r in &bparts[p] {
                ht.entry(build.columns[bk].data[r]).or_default().push(r);
            }
            max_build = max_build.max(bparts[p].len() as u64);
            for &pr in &pparts[p] {
                if let Some(brs) = ht.get(&probe.columns[pk].data[pr]) {
                    for &br in brs {
                        for (i, &c) in bcols.iter().enumerate() {
                            out[i].push(build.columns[c].data[br]);
                        }
                        for (i, &c) in pcols.iter().enumerate() {
                            out[bcols.len() + i].push(probe.columns[c].data[pr]);
                        }
                    }
                }
            }
        }

        let mut columns = Vec::new();
        for (i, name) in self.build_cols.iter().enumerate() {
            columns.push(Column::i64(name, std::mem::take(&mut out[i])));
        }
        for (i, name) in self.probe_cols.iter().enumerate() {
            columns.push(Column::i64(name, std::mem::take(&mut out[self.build_cols.len() + i])));
        }
        (Table::new(columns), max_build)
    }

    /// The pool-parallel join kernel: chunk-parallel partitioning, one
    /// build+probe task per partition, outputs concatenated in
    /// partition order — bit-identical to [`Self::execute_seq`]
    /// (partitions are disjoint and each preserves probe order, which
    /// is exactly the sequential emission order).
    ///
    /// # Panics
    ///
    /// Panics if named columns are missing or `fanout` is zero.
    pub fn execute_on(
        &self,
        pool: Pool,
        build: &Table,
        probe: &Table,
        fanout: u64,
    ) -> (Table, u64) {
        assert!(fanout > 0, "fanout must be positive");
        let bk = build.col_index(&self.build_key);
        let pk = probe.col_index(&self.probe_key);

        let bparts = par_partition(pool, &build.columns[bk].data, fanout);
        let pparts = par_partition(pool, &probe.columns[pk].data, fanout);

        let bcols: Vec<usize> = self.build_cols.iter().map(|c| build.col_index(c)).collect();
        let pcols: Vec<usize> = self.probe_cols.iter().map(|c| probe.col_index(c)).collect();

        // One task per partition; each emits its slice of every output
        // column in probe order.
        let per_part = pool.par_map(bparts.iter().zip(&pparts).collect(), |(bp, pp)| {
            let mut ht: HashMap<i64, Vec<usize>> = HashMap::new();
            for &r in bp {
                ht.entry(build.columns[bk].data[r]).or_default().push(r);
            }
            let mut out: Vec<Vec<i64>> = vec![Vec::new(); bcols.len() + pcols.len()];
            for &pr in pp {
                if let Some(brs) = ht.get(&probe.columns[pk].data[pr]) {
                    for &br in brs {
                        for (i, &c) in bcols.iter().enumerate() {
                            out[i].push(build.columns[c].data[br]);
                        }
                        for (i, &c) in pcols.iter().enumerate() {
                            out[bcols.len() + i].push(probe.columns[c].data[pr]);
                        }
                    }
                }
            }
            out
        });
        let max_build = bparts.iter().map(|p| p.len() as u64).max().unwrap_or(0);

        let names = self.build_cols.iter().chain(&self.probe_cols);
        let columns = names
            .enumerate()
            .map(|(i, name)| {
                Column::i64(name, per_part.iter().flat_map(|p| p[i].iter().copied()).collect())
            })
            .collect();
        (Table::new(columns), max_build)
    }
}

vector::kernel_entry! {
    /// `fanout`-way CRC32 row-id partitioning of a whole column with the
    /// process-wide kernel (scalar bit-serial CRC, the 4-lane SWAR
    /// table stream, or the SSE4.2 hardware stream) — bit-identical in
    /// every case.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    pub fn partition_row_ids(keys: &[i64], fanout: u64) -> Vec<Vec<usize>>
        => |kernel| partition_row_ids_with(keys, 0, fanout, kernel)
}

/// [`partition_row_ids`] with an explicit base row id (for chunked
/// callers partitioning `[base, base + keys.len())` of a larger column)
/// and kernel choice.
///
/// # Panics
///
/// Panics if `fanout` is zero.
pub fn partition_row_ids_with(
    keys: &[i64],
    base: usize,
    fanout: u64,
    kernel: Kernel,
) -> Vec<Vec<usize>> {
    match kernel {
        Kernel::Swar | Kernel::HwCrc => vector::partition_row_ids(keys, base, fanout, kernel),
        Kernel::Scalar => {
            assert!(fanout > 0, "fanout must be positive");
            let mut parts: Vec<Vec<usize>> = vec![Vec::new(); fanout as usize];
            for (r, &key) in keys.iter().enumerate() {
                parts[(crc32c_u64(key as u64) as u64 % fanout) as usize].push(base + r);
            }
            parts
        }
    }
}

/// `fanout`-way CRC32 row-id partitioning, chunk-parallel on `pool`.
/// Chunk results concatenate in chunk order, so every partition's row
/// ids come out ascending — exactly the sequential partitioning.
fn par_partition(pool: Pool, keys: &[i64], fanout: u64) -> Vec<Vec<usize>> {
    let kernel = vector::kernel();
    let per_chunk = pool.par_map(chunk_bounds(keys.len(), pool.threads() * 4), |(lo, hi)| {
        partition_row_ids_with(&keys[lo..hi], lo, fanout, kernel)
    });
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); fanout as usize];
    for chunk in per_chunk {
        for (p, rows) in chunk.into_iter().enumerate() {
            parts[p].extend(rows);
        }
    }
    parts
}

/// Convenience: joins `probe` against `build` on integer keys and
/// returns the result sorted by all columns (for order-insensitive
/// comparisons in tests and queries).
pub fn sorted_rows(t: &Table) -> Vec<Vec<i64>> {
    let mut rows: Vec<Vec<i64>> =
        (0..t.rows()).map(|r| t.columns.iter().map(|c| c.data[r]).collect()).collect();
    rows.sort_unstable();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim_and_fact() -> (Table, Table) {
        let dim = Table::new(vec![
            Column::i32("id", vec![1, 2, 3, 4]),
            Column::i32("cat", vec![10, 20, 30, 40]),
        ]);
        let fact = Table::new(vec![
            Column::i32("fk", vec![2, 3, 2, 9, 1]),
            Column::i32("val", vec![100, 200, 300, 400, 500]),
        ]);
        (dim, fact)
    }

    #[test]
    fn inner_join_matches_reference() {
        let (dim, fact) = dim_and_fact();
        let j = HashJoin {
            build_key: "id".into(),
            probe_key: "fk".into(),
            build_cols: vec!["cat".into()],
            probe_cols: vec!["val".into()],
        };
        let (out, _) = j.execute(&dim, &fact, 4);
        // fk=9 drops; (2,100)→20, (3,200)→30, (2,300)→20, (1,500)→10.
        let got = sorted_rows(&out);
        assert_eq!(got, vec![vec![10, 500], vec![20, 100], vec![20, 300], vec![30, 200]]);
    }

    #[test]
    fn duplicate_build_keys_fan_out() {
        let dim = Table::new(vec![Column::i32("id", vec![7, 7]), Column::i32("tag", vec![1, 2])]);
        let fact = Table::new(vec![Column::i32("fk", vec![7])]);
        let j = HashJoin {
            build_key: "id".into(),
            probe_key: "fk".into(),
            build_cols: vec!["tag".into()],
            probe_cols: vec!["fk".into()],
        };
        let (out, _) = j.execute(&dim, &fact, 2);
        assert_eq!(out.rows(), 2);
    }

    #[test]
    fn fanout_does_not_change_result() {
        let (dim, fact) = dim_and_fact();
        let j = HashJoin {
            build_key: "id".into(),
            probe_key: "fk".into(),
            build_cols: vec!["cat".into()],
            probe_cols: vec!["val".into()],
        };
        let (a, _) = j.execute(&dim, &fact, 1);
        let (b, _) = j.execute(&dim, &fact, 32);
        assert_eq!(sorted_rows(&a), sorted_rows(&b));
    }

    #[test]
    fn max_build_partition_shrinks_with_fanout() {
        let dim = Table::new(vec![Column::i32("id", (0..10_000).collect())]);
        let fact = Table::new(vec![Column::i32("fk", (0..100).collect())]);
        let j = HashJoin {
            build_key: "id".into(),
            probe_key: "fk".into(),
            build_cols: vec!["id".into()],
            probe_cols: vec![],
        };
        let (_, m1) = j.execute(&dim, &fact, 1);
        let (_, m32) = j.execute(&dim, &fact, 32);
        assert_eq!(m1, 10_000);
        assert!(m32 < 500, "32-way split should be ≈312 rows, got {m32}");
    }

    #[test]
    fn parallel_join_is_bit_identical_to_sequential() {
        // Many rows with duplicate keys, both projected sides.
        let dim = Table::new(vec![
            Column::i32("id", (0..3000).map(|i| i % 700).collect()),
            Column::i32("cat", (0..3000).map(|i| i * 3).collect()),
        ]);
        let fact = Table::new(vec![
            Column::i32("fk", (0..5000).map(|i| (i * 7) % 900).collect()),
            Column::i32("val", (0..5000).collect()),
        ]);
        let j = HashJoin {
            build_key: "id".into(),
            probe_key: "fk".into(),
            build_cols: vec!["cat".into()],
            probe_cols: vec!["val".into(), "fk".into()],
        };
        for fanout in [1u64, 2, 32] {
            let (want, want_max) = j.execute_seq(&dim, &fact, fanout);
            for workers in [1usize, 2, 4, 7] {
                let (got, got_max) = j.execute_on(Pool::new(workers), &dim, &fact, fanout);
                // Exact row order, not just multiset equality.
                assert_eq!(got, want, "fanout={fanout} workers={workers}");
                assert_eq!(got_max, want_max);
            }
        }
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let dim = Table::new(vec![Column::i32("id", vec![])]);
        let fact = Table::new(vec![Column::i32("fk", vec![])]);
        let j = HashJoin {
            build_key: "id".into(),
            probe_key: "fk".into(),
            build_cols: vec!["id".into()],
            probe_cols: vec!["fk".into()],
        };
        let (out, max_build) = j.execute(&dim, &fact, 8);
        assert_eq!(out.rows(), 0);
        assert_eq!(max_build, 0);
    }
}
