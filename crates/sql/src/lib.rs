//! A columnar SQL engine co-designed for the DPU (§5.3).
//!
//! The engine mirrors the paper's design: data lives in column-major
//! tables in DRAM; queries decompose into streaming primitives — filter
//! (BVLD/FILT), partition (DMS hardware + software rounds), group-by with
//! DMEM-resident hash tables, partitioned hash join, and top-k — that are
//! parallelized across the 32 dpCores. "Our query processing software is
//! designed around careful partitioning of the data to ensure that each
//! partition's data structures fit into the DMEM", guaranteeing
//! single-cycle access.
//!
//! Every operator executes *functionally* (results are checked against
//! naive reference implementations) while reporting the byte volumes and
//! operation counts that the DPU simulator and the Xeon model price.
//! The host inner loops (filter evaluation, CRC32 partitioning, group-by
//! probes) run hand-rolled SWAR kernels by default — see [`vector`] and
//! the `DPU_VECTOR` knob — bit-identical to the scalar reference paths.
//! Columns additionally carry a frame-of-reference bit-packed resident
//! form ([`column::PackedColumn`], the `DPU_PACK` knob): filters execute
//! in the encoded domain, everything else unpacks in lane batches, and
//! results stay bit-identical to flat execution.
//!
//! [`tpch`] provides a scaled TPC-H generator and eight queries used by
//! the Figure 16 reproduction.

/// Row-count floor below which the parallel join/agg paths fall back to
/// the sequential kernels: spawning scoped workers costs more than a
/// few thousand rows of hashing.
pub const PAR_MIN_ROWS: usize = 4096;

pub mod agg;
pub mod bitvec;
pub mod column;
pub mod expr;
pub mod filter;
pub mod hll;
pub mod join;
pub mod knob;
pub mod logical;
pub mod plan;
pub mod sort;
pub mod topk;
pub mod tpch;
pub mod vector;

pub use agg::{partitioned_group_by, AggFunc, GroupByPlan, GroupBySpec};
pub use bitvec::BitVec;
pub use column::{pack, set_pack, Column, Pack, PackChunk, PackedColumn, Table};
pub use expr::Expr;
pub use filter::{measure_filter_kernel, CompareOp, FilterSpec};
pub use hll::{HyperLogLog, RankMethod};
pub use join::{partition_row_ids, partition_row_ids_with, HashJoin};
pub use logical::{
    BaseTable, ColFilter, Finish, JoinEdge, JoinGraph, LogicalOutput, LogicalPlan, Relation, Source,
};
pub use plan::{CostAcc, PlatformCost, QueryCost};
pub use sort::{
    sample_bounds, sort_indices, sort_indices_multi, sort_indices_multi_packed_with,
    sort_indices_multi_with, sort_indices_packed_with, sort_indices_with,
};
pub use topk::{top_k, top_k_packed_with, top_k_with};
pub use vector::{kernel as vector_kernel, set_kernel as set_vector_kernel, Kernel};
