//! Query cost accounting for both platforms.
//!
//! Operators execute functionally and report their traffic and work into
//! a [`CostAcc`]; the accumulator converts to seconds with a roofline on
//! each platform: streaming bytes at the platform's effective memory
//! bandwidth versus compute cycles across its cores. Performance/watt
//! gains then follow the paper's provisioned-power arithmetic.

use xeon_model::Xeon;

/// Effective DPU streaming bandwidth, bytes/s — what the DMS sustains in
/// the Figure 11/13 microbenchmarks (≈9.6 GB/s out of the 12.8 GB/s
/// peak). The fig11 bench regenerates this number from the simulator.
pub const DPU_STREAM_BW: f64 = 9.6e9;
/// dpCore count × clock.
pub const DPU_CORES: f64 = 32.0;
/// dpCore clock in Hz.
pub const DPU_CLOCK: f64 = 800.0e6;
/// Provisioned DPU power, watts (§5).
pub const DPU_WATTS: f64 = 6.0;

/// Cost of a query on one platform.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlatformCost {
    /// Bytes moved through DRAM.
    pub bytes: u64,
    /// Total compute cycles summed over cores/threads.
    pub compute_cycles: u64,
    /// Wall-clock seconds (roofline of the two).
    pub seconds: f64,
}

/// Costs of a query on both platforms.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryCost {
    /// DPU side.
    pub dpu: PlatformCost,
    /// Xeon side.
    pub xeon: PlatformCost,
}

impl QueryCost {
    /// The Figure 14/16 metric: DPU performance/watt over Xeon
    /// performance/watt (throughput = 1/seconds).
    pub fn gain(&self, xeon: &Xeon) -> f64 {
        (self.xeon.seconds / self.dpu.seconds) * (xeon.tdp_watts() / DPU_WATTS)
    }
}

/// Accumulates operator costs for one query.
///
/// `scale` lets a query execute functionally on a miniature dataset
/// while costing at the paper's full scale factor: every byte and row
/// reported to the accumulator is multiplied by it, and cardinality-
/// driven planning (partition rounds) should use [`scale`](Self::scale)-
/// adjusted row counts.
#[derive(Debug, Clone, Copy)]
pub struct CostAcc {
    dpu_bytes: u64,
    dpu_cycles: u64,
    xeon_bytes: u64,
    xeon_cycles: u64,
    scale: u64,
}

impl Default for CostAcc {
    fn default() -> Self {
        CostAcc { dpu_bytes: 0, dpu_cycles: 0, xeon_bytes: 0, xeon_cycles: 0, scale: 1 }
    }
}

impl CostAcc {
    /// A zeroed accumulator at scale 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed accumulator costing at `scale`× the executed data size.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn with_scale(scale: u64) -> Self {
        assert!(scale > 0, "scale must be positive");
        CostAcc { scale, ..Self::default() }
    }

    /// The cardinality scale factor in force.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Both platforms stream the same bytes (e.g. a column scan).
    pub fn stream_both(&mut self, bytes: u64) -> &mut Self {
        self.dpu_bytes += bytes * self.scale;
        self.xeon_bytes += bytes * self.scale;
        self
    }

    /// Platform-specific byte traffic (e.g. differing partition rounds).
    pub fn stream(&mut self, dpu_bytes: u64, xeon_bytes: u64) -> &mut Self {
        self.dpu_bytes += dpu_bytes * self.scale;
        self.xeon_bytes += xeon_bytes * self.scale;
        self
    }

    /// Per-row compute on both platforms: the DPU pays
    /// `dpu_cycles_per_row` on its in-order pipeline, the Xeon
    /// `xeon_cycles_per_row` on its out-of-order cores.
    pub fn compute(
        &mut self,
        rows: u64,
        dpu_cycles_per_row: f64,
        xeon_cycles_per_row: f64,
    ) -> &mut Self {
        let rows = rows * self.scale;
        self.dpu_cycles += (rows as f64 * dpu_cycles_per_row) as u64;
        self.xeon_cycles += (rows as f64 * xeon_cycles_per_row) as u64;
        self
    }

    /// Converts to seconds via each platform's roofline.
    pub fn finish(&self, xeon: &Xeon) -> QueryCost {
        let dpu_mem = self.dpu_bytes as f64 / DPU_STREAM_BW;
        let dpu_cpu = self.dpu_cycles as f64 / (DPU_CORES * DPU_CLOCK);
        let xeon_mem = xeon.stream_seconds(self.xeon_bytes);
        let xeon_cpu =
            self.xeon_cycles as f64 / (xeon.config.threads as f64 * xeon.config.clock_hz);
        QueryCost {
            dpu: PlatformCost {
                bytes: self.dpu_bytes,
                compute_cycles: self.dpu_cycles,
                seconds: dpu_mem.max(dpu_cpu),
            },
            xeon: PlatformCost {
                bytes: self.xeon_bytes,
                compute_cycles: self.xeon_cycles,
                seconds: xeon_mem.max(xeon_cpu),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_gain_is_bandwidth_times_power() {
        // A pure scan: both platforms at their memory bandwidth.
        let mut acc = CostAcc::new();
        acc.stream_both(1 << 30);
        let xeon = Xeon::new();
        let cost = acc.finish(&xeon);
        let gain = cost.gain(&xeon);
        // (9.6/34.5) × (145/6) ≈ 6.7 — the paper's low-NDV group-by gain.
        assert!((gain - 6.72).abs() < 0.1, "gain {gain}");
    }

    #[test]
    fn extra_xeon_rounds_raise_the_gain() {
        // High-NDV group-by: DPU 3× bytes, Xeon 5× bytes.
        let b = 1u64 << 30;
        let mut acc = CostAcc::new();
        acc.stream(3 * b, 5 * b);
        let xeon = Xeon::new();
        let gain = acc.finish(&xeon).gain(&xeon);
        assert!(
            gain > 9.0 && gain < 13.0,
            "high-NDV gain should land near the paper's 9.7×, got {gain:.2}"
        );
    }

    #[test]
    fn compute_bound_roofline() {
        let mut acc = CostAcc::new();
        // Tiny bytes, huge compute.
        acc.stream_both(1024);
        acc.compute(1_000_000_000, 10.0, 2.0);
        let xeon = Xeon::new();
        let cost = acc.finish(&xeon);
        // DPU: 1e10 cycles / 25.6e9 cyc/s ≈ 0.39 s.
        assert!((cost.dpu.seconds - 10.0e9 / (32.0 * 800.0e6)).abs() < 1e-3);
        assert!(cost.xeon.seconds < cost.dpu.seconds, "Xeon wins raw speed");
        // But per watt the DPU can still win.
        assert!(cost.gain(&xeon) > 1.0);
    }

    #[test]
    fn accumulation_is_additive() {
        let xeon = Xeon::new();
        let mut a = CostAcc::new();
        a.stream_both(100).stream_both(100);
        let mut b = CostAcc::new();
        b.stream_both(200);
        assert_eq!(a.finish(&xeon), b.finish(&xeon));
    }
}
