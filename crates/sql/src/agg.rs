//! Grouping and aggregation (SQL group-by), §5.3.
//!
//! The engine "is designed around careful partitioning of the data to
//! ensure that each partition's data structures (like a hash table, in
//! the case of group-by) fit into the DMEM", which guarantees
//! single-cycle access. [`GroupByPlan`] reproduces the paper's planner
//! arithmetic: how many partitioning *rounds* (round trips through DRAM)
//! each platform pays before the per-partition hash tables fit their
//! respective budgets — the DPU's DMS performs the final round in
//! hardware for free, which is why the high-NDV case favours the DPU
//! even more (9.7×) than the low-NDV case (6.7×).

use std::collections::HashMap;

use dpu_isa::hash::crc32c_u64;
use dpu_pool::{chunk_bounds, in_worker, Pool};

use crate::bitvec::BitVec;
use crate::column::{pack, Column, Table};
use crate::vector::{self, Kernel};
use crate::PAR_MIN_ROWS;

/// An aggregate function over a named column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Sum of a column.
    Sum(String),
    /// Minimum of a column.
    Min(String),
    /// Maximum of a column.
    Max(String),
    /// Sum of products of two columns (e.g. price × discount).
    SumProduct(String, String),
}

/// A group-by specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupBySpec {
    /// Grouping key columns.
    pub group_cols: Vec<String>,
    /// Output aggregates as (output name, function).
    pub aggs: Vec<(String, AggFunc)>,
}

impl GroupBySpec {
    /// The re-aggregation spec that merges *partial* results of this
    /// group-by: each shard/partition aggregates its local rows with
    /// `self`, and the partials combine by summing sums and counts and
    /// re-minimizing/maximizing extrema over the output columns. This is
    /// the merge hook the rack-scale coordinator uses for scatter/gather
    /// aggregation.
    pub fn merge_spec(&self) -> GroupBySpec {
        GroupBySpec {
            group_cols: self.group_cols.clone(),
            aggs: self
                .aggs
                .iter()
                .map(|(name, f)| {
                    let merged = match f {
                        AggFunc::Min(_) => AggFunc::Min(name.clone()),
                        AggFunc::Max(_) => AggFunc::Max(name.clone()),
                        // Count, Sum and SumProduct partials all merge by
                        // summing the partial column.
                        _ => AggFunc::Sum(name.clone()),
                    };
                    (name.clone(), merged)
                })
                .collect(),
        }
    }

    /// Merges per-shard partial aggregate tables into the exact result
    /// `self.execute` would produce over the union of the shards' input
    /// rows (both are sorted by group key).
    ///
    /// # Panics
    ///
    /// Panics if `partials` is empty or the schemas disagree.
    pub fn merge_partials(&self, partials: &[Table]) -> Table {
        self.merge_spec().execute(&Table::concat(partials), None)
    }

    /// Executes the group-by over (optionally selected) rows, returning a
    /// result table sorted by group key. This is the reference-semantics
    /// path; timing goes through [`GroupByPlan`]. Large inputs run on
    /// the global host pool ([`Self::execute_on`]); the result is
    /// bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if a named column is missing or the selection length
    /// mismatches.
    pub fn execute(&self, table: &Table, sel: Option<&BitVec>) -> Table {
        // Packed execution (`DPU_PACK`): unpack the referenced columns
        // in lane batches once, then run the flat kernels unchanged —
        // bit-identical results either way.
        if let Some(decoded) = {
            let cols = self.columns_read();
            let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            table.decode_for(&refs, pack())
        } {
            return self.execute_flat(&decoded, sel);
        }
        self.execute_flat(table, sel)
    }

    /// Set of column names the spec reads (group keys plus aggregate
    /// inputs), sorted and deduplicated — the byte-accounting and
    /// packed-decode reference set.
    pub fn columns_read(&self) -> Vec<String> {
        let mut out = self.group_cols.clone();
        for (_, f) in &self.aggs {
            match f {
                AggFunc::Count => {}
                AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) => out.push(c.clone()),
                AggFunc::SumProduct(a, b) => {
                    out.push(a.clone());
                    out.push(b.clone());
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn execute_flat(&self, table: &Table, sel: Option<&BitVec>) -> Table {
        let pool = Pool::global();
        if pool.threads() > 1
            && !in_worker()
            && !self.group_cols.is_empty()
            && table.rows() >= PAR_MIN_ROWS
        {
            self.execute_on(pool, table, sel)
        } else if vector::kernel().vectorized() && !self.group_cols.is_empty() {
            self.execute_vector(table, sel)
        } else {
            self.execute_seq(table, sel)
        }
    }

    /// The sequential group-by kernel (the exact pre-parallelism path).
    ///
    /// # Panics
    ///
    /// Panics if a named column is missing or the selection length
    /// mismatches.
    pub fn execute_seq(&self, table: &Table, sel: Option<&BitVec>) -> Table {
        if let Some(bv) = sel {
            assert_eq!(bv.len(), table.rows(), "selection length mismatch");
        }
        let key_idx: Vec<usize> = self.group_cols.iter().map(|c| table.col_index(c)).collect();
        let init = self.state_init();
        let agg_cols = self.agg_col_indices(table);
        let mut groups: HashMap<Vec<i64>, Vec<i64>> = HashMap::new();

        for row in 0..table.rows() {
            if let Some(bv) = sel {
                if !bv.get(row) {
                    continue;
                }
            }
            let key: Vec<i64> = key_idx.iter().map(|&i| table.columns[i].data[row]).collect();
            let state = groups.entry(key).or_insert_with(|| init.clone());
            self.accumulate(table, row, &agg_cols, state);
        }

        let mut keys: Vec<Vec<i64>> = groups.keys().cloned().collect();
        keys.sort_unstable();
        let mut out_cols: Vec<Column> = self
            .group_cols
            .iter()
            .enumerate()
            .map(|(i, name)| Column::i64(name, keys.iter().map(|k| k[i]).collect()))
            .collect();
        for (si, (name, _)) in self.aggs.iter().enumerate() {
            out_cols.push(Column::i64(name, keys.iter().map(|k| groups[k][si]).collect()));
        }
        Table::new(out_cols)
    }

    vector::kernel_entry! {
        /// The SWAR group-by kernel ([`Self::execute_vector_with`]) on
        /// the process-wide kernel's CRC engine.
        ///
        /// # Panics
        ///
        /// Panics if a named column is missing, the selection length
        /// mismatches, or there are no group columns.
        pub fn execute_vector(&self, table: &Table, sel: Option<&BitVec>) -> Table
            => |kernel| self.execute_vector_with(table, sel, kernel)
    }

    /// The SWAR group-by kernel for any number of grouping columns:
    /// selected rows stream in ascending order (selection consumed a
    /// word at a time) through lane-batched key hashing — four keys per
    /// CRC batch, composite keys flattened into contiguous `u64` words —
    /// into an open-addressed accumulator table with branch-free
    /// min/max/sum updates; the collected groups sort by full key.
    /// Per-group accumulation visits rows in the same ascending order as
    /// [`Self::execute_seq`], so the result is bit-identical. `kernel`
    /// selects the CRC engine (every arm hashes identically).
    ///
    /// # Panics
    ///
    /// Panics if a named column is missing, the selection length
    /// mismatches, or there are no group columns.
    pub fn execute_vector_with(
        &self,
        table: &Table,
        sel: Option<&BitVec>,
        kernel: Kernel,
    ) -> Table {
        if let Some(bv) = sel {
            assert_eq!(bv.len(), table.rows(), "selection length mismatch");
        }
        assert!(!self.group_cols.is_empty(), "vector group-by needs a key column");
        let key_idx: Vec<usize> = self.group_cols.iter().map(|c| table.col_index(c)).collect();
        let rows: Vec<usize> = match sel {
            Some(bv) => bv.iter_set().collect(),
            None => (0..table.rows()).collect(),
        };
        let mut pairs = self.aggregate_swar(table, &rows, &key_idx, kernel);
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));

        let mut out_cols: Vec<Column> = self
            .group_cols
            .iter()
            .enumerate()
            .map(|(i, name)| Column::i64(name, pairs.iter().map(|(k, _)| k[i]).collect()))
            .collect();
        for (si, (name, _)) in self.aggs.iter().enumerate() {
            out_cols.push(Column::i64(name, pairs.iter().map(|(_, g)| g[si]).collect()));
        }
        Table::new(out_cols)
    }

    /// The open-addressed probe/accumulate loop shared by
    /// [`Self::execute_vector_with`] and the parallel leaf tasks:
    /// returns unsorted `(key, state)` pairs in first-seen order.
    /// Capacity is fixed at `2 × rows` rounded up to a power of two, so
    /// the table never rehashes and stays at most half full. Single-key
    /// specs hash the column values directly; wider specs pack each
    /// row's key tuple into a contiguous `u64`-word region and hash the
    /// flattened words — both through four CRC lanes on `kernel`'s
    /// engine.
    fn aggregate_swar(
        &self,
        table: &Table,
        rows: &[usize],
        key_idx: &[usize],
        kernel: Kernel,
    ) -> Vec<(Vec<i64>, Vec<i64>)> {
        assert!(rows.len() < u32::MAX as usize, "row count exceeds the u32 slot encoding");
        let init = self.state_init();
        let agg_cols = self.agg_col_indices(table);
        let stride = self.aggs.len();
        let width = key_idx.len();

        let cap = (rows.len() * 2).next_power_of_two().max(16);
        let mut groups = SwarGroups {
            mask: cap - 1,
            // Slot 0 = empty, else group index + 1 (dense, first-seen).
            slots: vec![0u32; cap],
            width,
            keys: Vec::new(),
            states: Vec::new(),
        };

        if width == 1 {
            let kd = &table.columns[key_idx[0]].data;
            let mut quads = rows.chunks_exact(4);
            for quad in &mut quads {
                // Lane-batched hashing: four independent CRC streams.
                let h = vector::hash_x4(
                    kernel,
                    [
                        kd[quad[0]] as u64,
                        kd[quad[1]] as u64,
                        kd[quad[2]] as u64,
                        kd[quad[3]] as u64,
                    ],
                );
                for (j, &row) in quad.iter().enumerate() {
                    let g = groups.group_of(&[kd[row] as u64], h[j], &init);
                    let state = &mut groups.states[g * stride..][..stride];
                    self.accumulate(table, row, &agg_cols, state);
                }
            }
            for &row in quads.remainder() {
                let g = groups.group_of(
                    &[kd[row] as u64],
                    vector::hash1(kernel, kd[row] as u64),
                    &init,
                );
                self.accumulate(table, row, &agg_cols, &mut groups.states[g * stride..][..stride]);
            }
        } else {
            // Flattened composite-key encoding: row j's key tuple packs
            // into flat[j*width .. (j+1)*width], hashed as one wide key.
            let mut flat = vec![0u64; rows.len() * width];
            for (c, &ki) in key_idx.iter().enumerate() {
                let kd = &table.columns[ki].data;
                for (j, &row) in rows.iter().enumerate() {
                    flat[j * width + c] = kd[row] as u64;
                }
            }
            let mut quads = rows.chunks_exact(4);
            for (q, quad) in (&mut quads).enumerate() {
                let b = q * 4 * width;
                let h = vector::hash_wide_x4(
                    kernel,
                    [
                        &flat[b..b + width],
                        &flat[b + width..b + 2 * width],
                        &flat[b + 2 * width..b + 3 * width],
                        &flat[b + 3 * width..b + 4 * width],
                    ],
                );
                for (j, &row) in quad.iter().enumerate() {
                    let key = &flat[(q * 4 + j) * width..][..width];
                    let g = groups.group_of(key, h[j], &init);
                    let state = &mut groups.states[g * stride..][..stride];
                    self.accumulate(table, row, &agg_cols, state);
                }
            }
            let tail_base = rows.len() - quads.remainder().len();
            for (j, &row) in quads.remainder().iter().enumerate() {
                let key = &flat[(tail_base + j) * width..][..width];
                let g = groups.group_of(key, vector::hash_wide(kernel, key), &init);
                self.accumulate(table, row, &agg_cols, &mut groups.states[g * stride..][..stride]);
            }
        }

        (0..groups.keys.len() / width)
            .map(|g| {
                let key = groups.keys[g * width..(g + 1) * width].iter().map(|&w| w as i64);
                (key.collect(), groups.states[g * stride..g * stride + stride].to_vec())
            })
            .collect()
    }

    vector::kernel_entry! {
        /// The pool-parallel group-by kernel: selected rows partition by
        /// CRC32 of the *first* key column (a group's rows all share it,
        /// so partitions hold disjoint groups), each partition
        /// aggregates independently, and the merged pairs sort by full
        /// key — exactly the key-sorted table [`Self::execute_seq`]
        /// produces. Leaf aggregation runs the process-wide kernel
        /// (`DPU_VECTOR`).
        ///
        /// # Panics
        ///
        /// Panics if a named column is missing, the selection length
        /// mismatches, or there are no group columns.
        pub fn execute_on(&self, pool: Pool, table: &Table, sel: Option<&BitVec>) -> Table
            => |kernel| self.execute_on_with(pool, table, sel, kernel)
    }

    /// [`Self::execute_on`] with an explicit kernel for the hash and
    /// leaf-aggregation inner loops, for differential tests and benches.
    ///
    /// # Panics
    ///
    /// Panics if a named column is missing, the selection length
    /// mismatches, or there are no group columns.
    pub fn execute_on_with(
        &self,
        pool: Pool,
        table: &Table,
        sel: Option<&BitVec>,
        kernel: Kernel,
    ) -> Table {
        if let Some(bv) = sel {
            assert_eq!(bv.len(), table.rows(), "selection length mismatch");
        }
        let key_idx: Vec<usize> = self.group_cols.iter().map(|c| table.col_index(c)).collect();
        let first = *key_idx.first().expect("parallel group-by needs a key column");
        let init = self.state_init();
        let agg_cols = self.agg_col_indices(table);

        // Chunk-parallel partitioning of the selected row ids; the
        // selection is consumed a word at a time, never via per-row
        // bit reads.
        let parts_n = (pool.threads() * 4).max(2);
        let per_chunk = pool.par_map(chunk_bounds(table.rows(), pool.threads() * 4), |(lo, hi)| {
            let mut parts: Vec<Vec<usize>> = vec![Vec::new(); parts_n];
            let kd = &table.columns[first].data;
            let mut route = |row: usize| {
                parts[(vector::hash1(kernel, kd[row] as u64) as usize) % parts_n].push(row);
            };
            match sel {
                Some(bv) => bv.iter_set_in(lo, hi).for_each(&mut route),
                None => (lo..hi).for_each(&mut route),
            }
            parts
        });
        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); parts_n];
        for chunk in per_chunk {
            for (p, rows) in chunk.into_iter().enumerate() {
                parts[p].extend(rows);
            }
        }

        // Disjoint groups per partition: aggregate independently, then
        // one global key sort reproduces the sequential output order.
        let mut pairs: Vec<(Vec<i64>, Vec<i64>)> = pool
            .par_map(parts, |rows| {
                if kernel.vectorized() {
                    return self.aggregate_swar(table, &rows, &key_idx, kernel);
                }
                let mut groups: HashMap<Vec<i64>, Vec<i64>> = HashMap::new();
                for row in rows {
                    let key: Vec<i64> =
                        key_idx.iter().map(|&i| table.columns[i].data[row]).collect();
                    let state = groups.entry(key).or_insert_with(|| init.clone());
                    self.accumulate(table, row, &agg_cols, state);
                }
                groups.into_iter().collect::<Vec<_>>()
            })
            .concat();
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));

        let mut out_cols: Vec<Column> = self
            .group_cols
            .iter()
            .enumerate()
            .map(|(i, name)| Column::i64(name, pairs.iter().map(|(k, _)| k[i]).collect()))
            .collect();
        for (si, (name, _)) in self.aggs.iter().enumerate() {
            out_cols.push(Column::i64(name, pairs.iter().map(|(_, s)| s[si]).collect()));
        }
        Table::new(out_cols)
    }

    /// Initial accumulator state, one slot per aggregate.
    fn state_init(&self) -> Vec<i64> {
        self.aggs
            .iter()
            .map(|(_, f)| match f {
                AggFunc::Min(_) => i64::MAX,
                AggFunc::Max(_) => i64::MIN,
                _ => 0,
            })
            .collect()
    }

    /// Resolved input column indices, one pair per aggregate.
    fn agg_col_indices(&self, table: &Table) -> Vec<(Option<usize>, Option<usize>)> {
        self.aggs
            .iter()
            .map(|(_, f)| match f {
                AggFunc::Count => (None, None),
                AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) => {
                    (Some(table.col_index(c)), None)
                }
                AggFunc::SumProduct(a, b) => (Some(table.col_index(a)), Some(table.col_index(b))),
            })
            .collect()
    }

    /// Folds one input row into a group's accumulator state.
    fn accumulate(
        &self,
        table: &Table,
        row: usize,
        agg_cols: &[(Option<usize>, Option<usize>)],
        state: &mut [i64],
    ) {
        for (si, (_, f)) in self.aggs.iter().enumerate() {
            let (c1, c2) = agg_cols[si];
            match f {
                AggFunc::Count => state[si] += 1,
                AggFunc::Sum(_) => state[si] += table.columns[c1.unwrap()].data[row],
                AggFunc::Min(_) => state[si] = state[si].min(table.columns[c1.unwrap()].data[row]),
                AggFunc::Max(_) => state[si] = state[si].max(table.columns[c1.unwrap()].data[row]),
                AggFunc::SumProduct(_, _) => {
                    state[si] +=
                        table.columns[c1.unwrap()].data[row] * table.columns[c2.unwrap()].data[row]
                }
            }
        }
    }
}

/// Open-addressed group table for the SWAR probe loop: linear probing
/// over power-of-two slots, groups stored densely in first-seen order
/// with flattened keys (`width` bit-cast `u64` words per group) and
/// flattened accumulator states. Never grows (callers size it at twice
/// the row count), so probes always terminate on an empty slot.
struct SwarGroups {
    mask: usize,
    slots: Vec<u32>,
    width: usize,
    keys: Vec<u64>,
    states: Vec<i64>,
}

impl SwarGroups {
    /// Dense index of `key`'s group (a `width`-word flattened tuple),
    /// inserting a fresh `init` state on first sight.
    #[inline]
    fn group_of(&mut self, key: &[u64], hash: u32, init: &[i64]) -> usize {
        let w = self.width;
        let mut i = hash as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s == 0 {
                self.keys.extend_from_slice(key);
                self.states.extend_from_slice(init);
                let g = self.keys.len() / w - 1;
                self.slots[i] = (g + 1) as u32;
                return g;
            }
            let g = s as usize - 1;
            if &self.keys[g * w..g * w + w] == key {
                return g;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// The partitioning-rounds planner (paper §5.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupByPlan {
    /// Estimated number of distinct groups.
    pub ndv: u64,
    /// Hash-table entry size in bytes.
    pub entry_bytes: u64,
    /// Fan-out required so a partition's table fits the DPU's DMEM budget.
    pub dpu_fanout_required: u64,
    /// Fan-out required so a partition's table fits the Xeon's cache
    /// budget.
    pub xeon_fanout_required: u64,
    /// DRAM round trips the DPU pays for partitioning.
    pub dpu_paid_rounds: u32,
    /// DRAM round trips the Xeon pays.
    pub xeon_paid_rounds: u32,
}

/// DMEM bytes available to a group-by hash table: "each input/output
/// buffer doesn't benefit much from more than 0.5 KB and hence a large
/// part of the DMEM space is allocated to the hash table" — 24 KB of the
/// 32 KB.
pub const DPU_TABLE_BUDGET: u64 = 24 * 1024;
/// Xeon per-partition target: an L2-resident table (256 KB).
pub const XEON_TABLE_BUDGET: u64 = 256 * 1024;
/// DPU fan-out in one *paid* software round, with the DMS's 32-way
/// hardware partitioner running in parallel: "we can sustain 9 GB/s for
/// an additional 32-way software partition in parallel (i.e. a 1024-way
/// partitioning)".
pub const DPU_FANOUT_PER_PAID_ROUND: u64 = 1024;
/// Final-round hardware fan-out that costs no DRAM round trip.
pub const DPU_FREE_HW_FANOUT: u64 = 32;
/// Xeon software fan-out per round (TLB/cache-associativity limited).
pub const XEON_FANOUT_PER_ROUND: u64 = 64;

impl GroupByPlan {
    /// Plans partitioning for `ndv` groups of `entry_bytes` each.
    pub fn plan(ndv: u64, entry_bytes: u64) -> Self {
        let need = |budget: u64| (ndv * entry_bytes).div_ceil(budget).max(1);
        let dpu_need = need(DPU_TABLE_BUDGET);
        let xeon_need = need(XEON_TABLE_BUDGET);

        // DPU: the last 32× of fan-out comes from the DMS for free; every
        // additional 1024× is one paid software round.
        let mut dpu_rounds = 0u32;
        let mut remaining = dpu_need.div_ceil(DPU_FREE_HW_FANOUT);
        while remaining > 1 {
            dpu_rounds += 1;
            remaining = remaining.div_ceil(DPU_FANOUT_PER_PAID_ROUND);
        }

        // Xeon: every round is paid.
        let mut xeon_rounds = 0u32;
        let mut remaining = xeon_need;
        while remaining > 1 {
            xeon_rounds += 1;
            remaining = remaining.div_ceil(XEON_FANOUT_PER_ROUND);
        }

        GroupByPlan {
            ndv,
            entry_bytes,
            dpu_fanout_required: dpu_need,
            xeon_fanout_required: xeon_need,
            dpu_paid_rounds: dpu_rounds,
            xeon_paid_rounds: xeon_rounds,
        }
    }

    /// Factor by which input bytes traverse DRAM on the DPU: one read for
    /// the aggregation pass plus read+write per paid round.
    pub fn dpu_bytes_factor(&self) -> u64 {
        1 + 2 * self.dpu_paid_rounds as u64
    }

    /// Same for the Xeon.
    pub fn xeon_bytes_factor(&self) -> u64 {
        1 + 2 * self.xeon_paid_rounds as u64
    }
}

/// Executes a partitioned group-by the way the DPU would: hash-partition
/// the rows by key (CRC32, as the DMS hash engine computes), aggregate
/// per partition, and merge. Returns the merged result (identical to
/// [`GroupBySpec::execute`]) plus the maximum per-partition table
/// footprint observed, so tests can check the planner's budget promise.
pub fn partitioned_group_by(
    spec: &GroupBySpec,
    table: &Table,
    fanout: u64,
    entry_bytes: u64,
) -> (Table, u64) {
    let key_idx: Vec<usize> = spec.group_cols.iter().map(|c| table.col_index(c)).collect();
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); fanout as usize];
    for row in 0..table.rows() {
        let k = table.columns[key_idx[0]].data[row];
        parts[(crc32c_u64(k as u64) as u64 % fanout) as usize].push(row);
    }
    // One aggregation task per non-empty partition, in partition order
    // (par_map preserves it; the footprint max and the key-sorted merge
    // below are both order-insensitive anyway).
    let pool = if table.rows() >= PAR_MIN_ROWS { Pool::global() } else { Pool::new(1) };
    let partials: Vec<Table> =
        pool.par_map(parts.iter().filter(|r| !r.is_empty()).collect(), |rows: &Vec<usize>| {
            let sub = Table::new(
                table
                    .columns
                    .iter()
                    .map(|c| Column {
                        name: c.name.clone(),
                        width: c.width,
                        data: rows.iter().map(|&r| c.data[r]).collect(),
                        packed: None,
                    })
                    .collect(),
            );
            spec.execute(&sub, None)
        });
    let max_footprint = partials.iter().map(|p| p.rows() as u64 * entry_bytes).max().unwrap_or(0);
    // Merge: partitions hold disjoint groups, so concatenate and re-sort
    // (the "merge operator" has very low overhead, §5.3).
    let mut all_rows: Vec<Vec<i64>> = Vec::new();
    for p in &partials {
        for r in 0..p.rows() {
            all_rows.push(p.columns.iter().map(|c| c.data[r]).collect());
        }
    }
    let nkeys = spec.group_cols.len();
    all_rows.sort_unstable_by(|a, b| a[..nkeys].cmp(&b[..nkeys]));
    let template = partials.first().cloned().unwrap_or_else(|| spec.execute(table, None));
    let merged = Table::new(
        template
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| Column {
                name: c.name.clone(),
                width: c.width,
                data: all_rows.iter().map(|r| r[i]).collect(),
                packed: None,
            })
            .collect(),
    );
    (merged, max_footprint)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales_table() -> Table {
        // 1000 rows, 10 groups.
        let keys: Vec<i64> = (0..1000).map(|i| i % 10).collect();
        let vals: Vec<i64> = (0..1000).collect();
        let discount: Vec<i64> = (0..1000).map(|i| i % 5).collect();
        Table::new(vec![Column::i32("k", keys), Column::i32("v", vals), Column::i32("d", discount)])
    }

    #[test]
    fn aggregates_match_reference() {
        let t = sales_table();
        let spec = GroupBySpec {
            group_cols: vec!["k".into()],
            aggs: vec![
                ("cnt".into(), AggFunc::Count),
                ("sum_v".into(), AggFunc::Sum("v".into())),
                ("min_v".into(), AggFunc::Min("v".into())),
                ("max_v".into(), AggFunc::Max("v".into())),
                ("rev".into(), AggFunc::SumProduct("v".into(), "d".into())),
            ],
        };
        let out = spec.execute(&t, None);
        assert_eq!(out.rows(), 10);
        for g in 0..10i64 {
            let row = out.column("k").unwrap().data.iter().position(|&k| k == g).unwrap();
            assert_eq!(out.column("cnt").unwrap().data[row], 100);
            let want_sum: i64 = (0..1000).filter(|i| i % 10 == g).sum();
            assert_eq!(out.column("sum_v").unwrap().data[row], want_sum);
            assert_eq!(out.column("min_v").unwrap().data[row], g);
            assert_eq!(out.column("max_v").unwrap().data[row], 990 + g);
            let want_rev: i64 = (0..1000).filter(|i| i % 10 == g).map(|i| i * (i % 5)).sum();
            assert_eq!(out.column("rev").unwrap().data[row], want_rev);
        }
    }

    #[test]
    fn selection_restricts_rows() {
        let t = sales_table();
        let sel = BitVec::from_fn(1000, |i| i < 100);
        let spec = GroupBySpec {
            group_cols: vec!["k".into()],
            aggs: vec![("cnt".into(), AggFunc::Count)],
        };
        let out = spec.execute(&t, Some(&sel));
        assert_eq!(out.rows(), 10);
        assert!(out.column("cnt").unwrap().data.iter().all(|&c| c == 10));
    }

    #[test]
    fn multi_key_grouping() {
        let t = Table::new(vec![
            Column::i32("a", vec![1, 1, 2, 2, 1]),
            Column::i32("b", vec![1, 2, 1, 1, 1]),
            Column::i32("v", vec![10, 20, 30, 40, 50]),
        ]);
        let spec = GroupBySpec {
            group_cols: vec!["a".into(), "b".into()],
            aggs: vec![("s".into(), AggFunc::Sum("v".into()))],
        };
        let out = spec.execute(&t, None);
        assert_eq!(out.rows(), 3);
        // Sorted by (a, b): (1,1)=60, (1,2)=20, (2,1)=70.
        assert_eq!(out.column("s").unwrap().data, vec![60, 20, 70]);
    }

    #[test]
    fn low_ndv_plan_needs_no_partitioning() {
        // 10 groups × 16 B ≪ 24 KB: zero rounds on both platforms (the
        // 6.7× gain comes purely from bandwidth/watt).
        let p = GroupByPlan::plan(10, 16);
        assert_eq!(p.dpu_paid_rounds, 0);
        assert_eq!(p.xeon_paid_rounds, 0);
        assert_eq!(p.dpu_bytes_factor(), 1);
        assert_eq!(p.xeon_bytes_factor(), 1);
    }

    #[test]
    fn high_ndv_plan_saves_the_dpu_a_round() {
        // 2 M groups × 16 B = 32 MB of table: the DPU needs fan-out 1366
        // (one paid 1024-way round; the free 32-way hardware round covers
        // the rest); the Xeon needs fan-out 128 = two paid 64-way rounds.
        let p = GroupByPlan::plan(2_000_000, 16);
        assert_eq!(p.dpu_paid_rounds, 1, "fanout {}", p.dpu_fanout_required);
        assert_eq!(p.xeon_paid_rounds, 2, "fanout {}", p.xeon_fanout_required);
        assert_eq!(p.dpu_bytes_factor(), 3);
        assert_eq!(p.xeon_bytes_factor(), 5);
    }

    #[test]
    fn monstrous_ndv_scales_rounds() {
        let p = GroupByPlan::plan(2_000_000_000, 16);
        assert!(p.dpu_paid_rounds >= 1);
        assert!(p.xeon_paid_rounds > p.dpu_paid_rounds);
    }

    #[test]
    fn partitioned_equals_unpartitioned() {
        let t = sales_table();
        let spec = GroupBySpec {
            group_cols: vec!["k".into()],
            aggs: vec![("cnt".into(), AggFunc::Count), ("s".into(), AggFunc::Sum("v".into()))],
        };
        let reference = spec.execute(&t, None);
        let (partitioned, max_fp) = partitioned_group_by(&spec, &t, 8, 16);
        assert_eq!(partitioned, reference);
        assert!(max_fp <= DPU_TABLE_BUDGET);
    }

    #[test]
    fn parallel_group_by_is_bit_identical_to_sequential() {
        let keys: Vec<i64> = (0..8000).map(|i| (i * 13) % 321).collect();
        let keys2: Vec<i64> = (0..8000).map(|i| i % 4).collect();
        let vals: Vec<i64> = (0..8000).map(|i| i * 3 - 5000).collect();
        let t = Table::new(vec![
            Column::i32("k", keys),
            Column::i32("k2", keys2),
            Column::i32("v", vals.clone()),
            Column::i32("d", vals.iter().map(|v| v % 11).collect()),
        ]);
        let spec = GroupBySpec {
            group_cols: vec!["k".into(), "k2".into()],
            aggs: vec![
                ("cnt".into(), AggFunc::Count),
                ("s".into(), AggFunc::Sum("v".into())),
                ("lo".into(), AggFunc::Min("v".into())),
                ("hi".into(), AggFunc::Max("v".into())),
                ("sp".into(), AggFunc::SumProduct("v".into(), "d".into())),
            ],
        };
        for sel in [None, Some(BitVec::from_fn(8000, |i| i % 3 != 0))] {
            let want = spec.execute_seq(&t, sel.as_ref());
            for workers in [1usize, 2, 4, 7] {
                let got = spec.execute_on(Pool::new(workers), &t, sel.as_ref());
                assert_eq!(got, want, "workers={workers} sel={}", sel.is_some());
            }
        }
    }

    #[test]
    fn partition_footprint_shrinks_with_fanout() {
        let keys: Vec<i64> = (0..20_000).map(|i| i * 7 % 5000).collect();
        let t = Table::new(vec![Column::i32("k", keys)]);
        let spec =
            GroupBySpec { group_cols: vec!["k".into()], aggs: vec![("c".into(), AggFunc::Count)] };
        let (_, fp1) = partitioned_group_by(&spec, &t, 1, 16);
        let (_, fp32) = partitioned_group_by(&spec, &t, 32, 16);
        assert!(fp32 * 16 < fp1, "32-way fanout should cut footprint ~32×");
    }
}
