//! Host-side SWAR execution kernels.
//!
//! The paper's dpCores earn their throughput with bit-vector and hashing
//! tricks: BVLD/FILT produce one selection bit per row in a 64-bit
//! accumulator, and the DMS hash engine partitions on a single-cycle
//! CRC32. This module ports the same structure to the *host* inner
//! loops: hand-rolled multi-lane kernels over packed `u64` words —
//! stable Rust, no `std::simd` — behind the existing `execute` entry
//! points.
//!
//! The kernels, mirroring the paper's primitives:
//!
//! 1. **Filter** ([`filter_band`]): predicate evaluation emits whole
//!    [`BitVec`] words 64 rows at a time. Four interleaved lane
//!    accumulators (rows `4k`, `4k+1`, `4k+2`, `4k+3`) break the OR
//!    dependency chain, and each band test compiles to branch-free
//!    compare-and-mask (`setcc`) — the host analogue of FILT shifting
//!    bits into its accumulator.
//! 2. **Partition** ([`partition_row_ids`]): CRC32-C row-id
//!    partitioning with four independent CRC streams in flight — the
//!    stream-split trick hardware CRC units use — table-driven on the
//!    SWAR arm, `crc32q` on the hardware arm.
//! 3. **Group-by probe** ([`crate::agg::GroupBySpec::execute_vector`]):
//!    lane-batched key hashing (4 keys per CRC batch, composite keys
//!    flattened into contiguous `u64` words) feeding an open-addressed,
//!    allocation-free accumulator table with branch-free min/max/sum
//!    updates.
//! 4. **Top-k pre-filter** ([`gt_mask_word`]): a branch-free 64-row
//!    band test against the current k-th value, so the heap only sees
//!    rows that can change it ([`crate::topk::top_k_with`]).
//! 5. **Sort keys** ([`sort_keys`], [`composite_sort_keys`]):
//!    order-normalized `u64` sort keys materialized in lane batches, so
//!    [`crate::sort`] compares words instead of per-row multi-column
//!    comparators.
//! 6. **Expression lanes** ([`add_lanes`] and friends): the expression
//!    evaluator's arithmetic over column slices, four rows per unrolled
//!    step ([`crate::expr::Expr::eval_with`]).
//!
//! Every kernel is **bit-identical** to its scalar twin — same words,
//! same row order, same accumulator values — at every table size,
//! chunking, and `DPU_THREADS`; `tests/vector_properties.rs` pins this
//! differentially. The `DPU_VECTOR` env knob selects the kernel
//! process-wide: `off`/`0`/`false`/`scalar` → scalar reference loops,
//! `hwcrc`/`hw` → SWAR with the SSE4.2 `crc32q` hash (degrading to the
//! table CRC where the instruction is absent), anything else → the
//! table-driven SWAR arm (the default). [`set_kernel`] overrides it
//! in-process for benches that compare the arms.

use dpu_isa::hash::{
    crc32c_u64, crc32c_u64_hw, crc32c_u64_table, crc32c_u64_x4, crc32c_u64_x4_hw, crc32c_wide,
    crc32c_wide_hw, crc32c_wide_table, crc32c_wide_x4, crc32c_wide_x4_hw, hw_crc_available,
};

use crate::bitvec::BitVec;
use crate::column::PackedColumn;
use crate::knob::{self, EnvKnob};

/// Which implementation the SQL kernels run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The reference scalar loops (the exact pre-vectorization paths).
    Scalar,
    /// The multi-lane SWAR kernels with the table-driven CRC
    /// (bit-identical to scalar, faster).
    Swar,
    /// The SWAR kernels hashing with the SSE4.2 `crc32q` instruction
    /// (bit-identical to both other arms; selectable only where the
    /// instruction exists).
    HwCrc,
}

impl Kernel {
    /// True for the SWAR arms (everything except the scalar reference);
    /// the vectorized execution paths differ only in their CRC engine.
    pub fn vectorized(self) -> bool {
        self != Kernel::Scalar
    }
}

/// The resolved kernel choice (1 = scalar, 2 = SWAR, 3 = hardware CRC;
/// 0 = not yet resolved from `DPU_VECTOR`).
static KERNEL: EnvKnob = EnvKnob::new("DPU_VECTOR");

/// The process-wide kernel: the last [`set_kernel`] value, else
/// `DPU_VECTOR` (`off`, `0`, `false` or `scalar` → [`Kernel::Scalar`];
/// `hwcrc` or `hw` → [`Kernel::HwCrc`] where SSE4.2 exists, else
/// [`Kernel::Swar`]), else [`Kernel::Swar`]. Resolved once, like
/// `DPU_THREADS` and `DPU_PACK` ([`crate::knob`] owns the spellings).
pub fn kernel() -> Kernel {
    match KERNEL.get(knob::kernel_code) {
        1 => Kernel::Scalar,
        3 if hw_crc_available() => Kernel::HwCrc,
        _ => Kernel::Swar,
    }
}

/// Overrides the kernel choice for subsequent [`kernel`] calls (benches
/// and tests that compare the arms in one process). [`Kernel::HwCrc`]
/// degrades to [`Kernel::Swar`] on hosts without the instruction, so a
/// resolved `HwCrc` always means the hardware path really runs.
pub fn set_kernel(k: Kernel) {
    KERNEL.set(match k {
        Kernel::Scalar => 1,
        Kernel::Swar => 2,
        Kernel::HwCrc if hw_crc_available() => 3,
        Kernel::HwCrc => 2,
    });
}

/// Declares the knob-resolving twin of a `*_with` kernel entry point:
/// the public wrapper resolves [`kernel`] once and forwards. One macro
/// call per operator keeps the `apply`/`apply_with` pair boilerplate
/// from multiplying across kernels; the `|kernel| expr` body spells out
/// the forward so argument reordering and extra defaults (`None`
/// selections, base offsets) stay visible at the declaration site.
macro_rules! kernel_entry {
    ($(#[$meta:meta])* $vis:vis fn $name:ident(&$self_:ident $(, $arg:ident: $ty:ty)* $(,)?)
        -> $ret:ty => |$k:ident| $body:expr) => {
        $(#[$meta])*
        $vis fn $name(&$self_ $(, $arg: $ty)*) -> $ret {
            let $k = $crate::vector::kernel();
            $body
        }
    };
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $ty:ty),* $(,)?)
        -> $ret:ty => |$k:ident| $body:expr) => {
        $(#[$meta])*
        $vis fn $name($($arg: $ty),*) -> $ret {
            let $k = $crate::vector::kernel();
            $body
        }
    };
}
pub(crate) use kernel_entry;

/// CRC32-C of one 64-bit key on `kernel`'s engine: bit-serial reference,
/// table-driven SWAR, or `crc32q`. All three produce the same value —
/// the arms differ only in cost.
#[inline]
pub(crate) fn hash1(kernel: Kernel, key: u64) -> u32 {
    match kernel {
        Kernel::Scalar => crc32c_u64(key),
        Kernel::Swar => crc32c_u64_table(key),
        Kernel::HwCrc => crc32c_u64_hw(key),
    }
}

/// Four independent CRC streams on `kernel`'s engine.
#[inline]
pub(crate) fn hash_x4(kernel: Kernel, keys: [u64; 4]) -> [u32; 4] {
    match kernel {
        Kernel::Scalar => keys.map(crc32c_u64),
        Kernel::Swar => crc32c_u64_x4(keys),
        Kernel::HwCrc => crc32c_u64_x4_hw(keys),
    }
}

/// CRC32-C of a flattened composite key on `kernel`'s engine.
#[inline]
pub(crate) fn hash_wide(kernel: Kernel, words: &[u64]) -> u32 {
    match kernel {
        Kernel::Scalar => crc32c_wide(words),
        Kernel::Swar => crc32c_wide_table(words),
        Kernel::HwCrc => crc32c_wide_hw(words),
    }
}

/// Four independent wide-key CRC streams on `kernel`'s engine.
#[inline]
pub(crate) fn hash_wide_x4(kernel: Kernel, lanes: [&[u64]; 4]) -> [u32; 4] {
    match kernel {
        Kernel::Scalar => [
            crc32c_wide(lanes[0]),
            crc32c_wide(lanes[1]),
            crc32c_wide(lanes[2]),
            crc32c_wide(lanes[3]),
        ],
        Kernel::Swar => crc32c_wide_x4(lanes),
        Kernel::HwCrc => crc32c_wide_x4_hw(lanes),
    }
}

/// Branch-free inclusive band test: 1 if `lo <= x <= hi`, else 0. Both
/// comparisons lower to flag-setting compares (no data-dependent
/// branch), exactly [`crate::filter::CompareOp::matches`] semantics.
#[inline(always)]
fn in_band(x: i64, lo: i64, hi: i64) -> u64 {
    ((x >= lo) & (x <= hi)) as u64
}

/// The SWAR filter kernel: evaluates the band `[lo, hi]` over a column,
/// emitting one packed `u64` selection word per 64 rows (tail word
/// masked). Within each 64-row block, four interleaved lane
/// accumulators OR compare-and-mask results at bit positions `4k + lane`
/// so the four chains retire independently.
pub fn filter_band(data: &[i64], lo: i64, hi: i64) -> BitVec {
    let len = data.len();
    let mut words = Vec::with_capacity(len.div_ceil(64));
    let mut blocks = data.chunks_exact(64);
    for block in &mut blocks {
        let (mut l0, mut l1, mut l2, mut l3) = (0u64, 0u64, 0u64, 0u64);
        for k in 0..16 {
            let b = k * 4;
            l0 |= in_band(block[b], lo, hi) << b;
            l1 |= in_band(block[b + 1], lo, hi) << (b + 1);
            l2 |= in_band(block[b + 2], lo, hi) << (b + 2);
            l3 |= in_band(block[b + 3], lo, hi) << (b + 3);
        }
        words.push((l0 | l1) | (l2 | l3));
    }
    let tail = blocks.remainder();
    if !tail.is_empty() {
        let mut w = 0u64;
        for (k, &x) in tail.iter().enumerate() {
            w |= in_band(x, lo, hi) << k;
        }
        words.push(w);
    }
    BitVec::from_words(len, words)
}

/// Per-field unsigned `x ≤ c` over `u64` words split into equal bit
/// fields: `cb` is the comparand broadcast to every field, `h` the
/// per-field MSB mask. Returns the result flags at the MSB positions.
///
/// Classic SWAR compare: the low bits decide via a borrow test — each
/// minuend field is `(c_low | MSB)`, always ≥ its subtrahend `x_low`,
/// so no borrow ever crosses a field boundary — and the MSBs decide
/// directly (`x` MSB clear, `c` MSB set → less; equal MSBs → defer to
/// the low-bit borrow).
#[inline(always)]
fn le_flags(x: u64, cb: u64, h: u64) -> u64 {
    let low = ((cb & !h) | h).wrapping_sub(x & !h) & h;
    let (xh, ch) = (x & h, cb & h);
    (!xh & ch) | (!(xh ^ ch) & low)
}

/// Per-field unsigned `x ≥ c`; the mirror of [`le_flags`].
#[inline(always)]
fn ge_flags(x: u64, cb: u64, h: u64) -> u64 {
    let low = ((x & !h) | h).wrapping_sub(cb & !h) & h;
    let (xh, ch) = (x & h, cb & h);
    (xh & !ch) | (!(xh ^ ch) & low)
}

/// Moves the bits at even positions (0, 2, 4, …) to contiguous low
/// positions (0, 1, 2, …) — one round of Morton-order bit compaction.
/// After masking, each OR merges disjoint bit sets, so the shifts never
/// collide.
#[inline(always)]
fn compress_even(mut x: u64) -> u64 {
    x &= 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF
}

/// Compacts bits at stride `stride` (a power of two: positions 0,
/// `stride`, `2·stride`, …) to contiguous low positions — `log2(stride)`
/// rounds of [`compress_even`]. This gathers per-field compare flags
/// into selection-word bits; the multiply-and-shift movemask trick is
/// *not* equivalent here (partial products collide for 4-bit fields),
/// so the compaction ladder is the correct branch-free gather.
#[inline(always)]
fn compress_stride(mut x: u64, mut stride: usize) -> u64 {
    while stride > 1 {
        x = compress_even(x);
        stride >>= 1;
    }
    x
}

/// The packed-column filter kernel: evaluates the band `[lo, hi]`
/// directly on a [`PackedColumn`]'s words — no unpacking — emitting the
/// same selection words as [`filter_band`] over the decoded values.
///
/// Per chunk, in the *encoded domain*:
///
/// 1. **Zone map**: the chunk header's exact `[min, max]` short-circuits
///    chunks entirely outside the band to all-zeros words and chunks
///    entirely inside to all-ones words, without touching the payload.
/// 2. **Rebase**: otherwise the band is clamped to the chunk range and
///    rebased by the frame — `elo = max(lo, min) − min`,
///    `ehi = min(hi, max) − min` — so the test becomes an unsigned
///    compare against the stored deltas (exact for every `i64`: deltas
///    live in unsigned `[0, max − min]`).
/// 3. **SWAR compare**: [`le_flags`]`/`[`ge_flags`] test all `64/bits`
///    delta lanes of each packed word at once; [`compress_stride`]
///    gathers the per-field flags into selection-bit order. 1-bit
///    chunks reduce to whole-word Boolean ops and 64-bit chunks to one
///    compare per row.
///
/// Chunk size is a multiple of 64, so chunk outputs tile whole
/// selection words; garbage lanes in a final partial word only ever
/// touch the globally-final word, which [`BitVec::from_words`] masks.
pub fn filter_band_packed(col: &PackedColumn, lo: i64, hi: i64) -> BitVec {
    let len = col.len();
    let mut out: Vec<u64> = Vec::with_capacity(len.div_ceil(64));
    for (ci, ch) in col.chunks().iter().enumerate() {
        let rows = col.chunk_rows(ci);
        let words = col.chunk_words(ci);
        let chunk_out = rows.div_ceil(64);
        if hi < ch.frame || lo > ch.max || lo > hi {
            out.resize(out.len() + chunk_out, 0);
            continue;
        }
        if lo <= ch.frame && hi >= ch.max {
            out.resize(out.len() + chunk_out, !0u64);
            continue;
        }
        let elo = lo.max(ch.frame).wrapping_sub(ch.frame) as u64;
        let ehi = hi.min(ch.max).wrapping_sub(ch.frame) as u64;
        match ch.bits {
            64 => {
                // One row per word: plain unsigned compares, 64 rows
                // per selection word.
                for group in words.chunks(64) {
                    let mut ow = 0u64;
                    for (k, &d) in group.iter().enumerate() {
                        ow |= ((d >= elo && d <= ehi) as u64) << k;
                    }
                    out.push(ow);
                }
            }
            1 => {
                // 64 rows per word; after the zone map only one-sided
                // bands remain, so each word maps by a Boolean op.
                for &x in words {
                    out.push(if elo == 1 { x } else { !x });
                }
            }
            bits => {
                let w = bits as usize;
                let vpw = 64 / w;
                let ones = u64::MAX / ((1u64 << w) - 1);
                let h = ones << (w - 1);
                let (lo_b, hi_b) = (elo.wrapping_mul(ones), ehi.wrapping_mul(ones));
                let mut ow = 0u64;
                let mut j = 0;
                for &x in words {
                    let flags = le_flags(x, hi_b, h) & ge_flags(x, lo_b, h);
                    ow |= compress_stride(flags >> (w - 1), w) << (j * vpw);
                    j += 1;
                    if j * vpw == 64 {
                        out.push(ow);
                        ow = 0;
                        j = 0;
                    }
                }
                if j > 0 {
                    out.push(ow);
                }
            }
        }
    }
    BitVec::from_words(len, out)
}

/// The top-k pre-filter word: bit `k` set iff `block[k] > threshold`,
/// over one 64-row block. Four interleaved lane accumulators, exactly
/// the [`filter_band`] structure with a one-sided band — the SWAR test
/// that lets the heap skip every row that cannot displace its minimum.
///
/// # Panics
///
/// Panics unless `block` holds exactly 64 rows.
pub fn gt_mask_word(block: &[i64], threshold: i64) -> u64 {
    assert_eq!(block.len(), 64, "pre-filter blocks are one selection word wide");
    let (mut l0, mut l1, mut l2, mut l3) = (0u64, 0u64, 0u64, 0u64);
    for k in 0..16 {
        let b = k * 4;
        l0 |= ((block[b] > threshold) as u64) << b;
        l1 |= ((block[b + 1] > threshold) as u64) << (b + 1);
        l2 |= ((block[b + 2] > threshold) as u64) << (b + 2);
        l3 |= ((block[b + 3] > threshold) as u64) << (b + 3);
    }
    (l0 | l1) | (l2 | l3)
}

/// The sign-bit flip that makes unsigned `u64` comparison agree with
/// signed `i64` comparison — the order-normalized sort-key encoding.
#[inline(always)]
pub fn sort_key(v: i64) -> u64 {
    (v as u64) ^ (1 << 63)
}

/// Materializes order-normalized `u64` sort keys for a whole column in
/// lane batches (four rows per unrolled step): `sort_key(a) <
/// sort_key(b)` iff `a < b`, so sorting compares words instead of
/// signed values.
pub fn sort_keys(values: &[i64]) -> Vec<u64> {
    let mut keys = Vec::with_capacity(values.len());
    let mut quads = values.chunks_exact(4);
    for q in &mut quads {
        keys.extend_from_slice(&[sort_key(q[0]), sort_key(q[1]), sort_key(q[2]), sort_key(q[3])]);
    }
    for &v in quads.remainder() {
        keys.push(sort_key(v));
    }
    keys
}

/// Flattens a multi-column sort key into a contiguous row-major `u64`
/// region (`width = cols.len()` words per row), each word
/// order-normalized: comparing `&flat[a*w..a*w+w]` with
/// `&flat[b*w..b*w+w]` lexicographically equals comparing the rows
/// column by column. The same flattened encoding the composite-key
/// group-by hashes.
///
/// # Panics
///
/// Panics if `cols` is empty or the columns disagree on length.
pub fn composite_sort_keys(cols: &[&[i64]]) -> Vec<u64> {
    let rows = cols.first().expect("composite key needs at least one column").len();
    assert!(cols.iter().all(|c| c.len() == rows), "key columns must share one length");
    let width = cols.len();
    let mut flat = vec![0u64; rows * width];
    for (j, col) in cols.iter().enumerate() {
        // Column-at-a-time writes keep the inner loop a strided store of
        // one normalized word, lane-friendly for the compiler.
        for (r, &v) in col.iter().enumerate() {
            flat[r * width + j] = sort_key(v);
        }
    }
    flat
}

/// In-place lane-batched wrapping addition: `a[i] += b[i]`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn add_lanes(a: &mut [i64], b: &[i64]) {
    binop_lanes(a, b, i64::wrapping_add);
}

/// In-place lane-batched wrapping subtraction: `a[i] -= b[i]`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn sub_lanes(a: &mut [i64], b: &[i64]) {
    binop_lanes(a, b, i64::wrapping_sub);
}

/// In-place lane-batched wrapping multiplication: `a[i] *= b[i]`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn mul_lanes(a: &mut [i64], b: &[i64]) {
    binop_lanes(a, b, i64::wrapping_mul);
}

#[inline(always)]
fn binop_lanes(a: &mut [i64], b: &[i64], f: impl Fn(i64, i64) -> i64) {
    assert_eq!(a.len(), b.len(), "lane length mismatch");
    let mut aq = a.chunks_exact_mut(4);
    let mut bq = b.chunks_exact(4);
    for (x, y) in (&mut aq).zip(&mut bq) {
        x[0] = f(x[0], y[0]);
        x[1] = f(x[1], y[1]);
        x[2] = f(x[2], y[2]);
        x[3] = f(x[3], y[3]);
    }
    for (x, &y) in aq.into_remainder().iter_mut().zip(bq.remainder()) {
        *x = f(*x, y);
    }
}

/// In-place division `a[i] /= b[i]`, checking divisors in row order so a
/// zero divisor panics on exactly the row (and with exactly the message)
/// the scalar evaluator would.
///
/// # Panics
///
/// Panics on length mismatch or a zero divisor.
pub fn div_lanes(a: &mut [i64], b: &[i64]) {
    assert_eq!(a.len(), b.len(), "lane length mismatch");
    for (x, &y) in a.iter_mut().zip(b) {
        assert!(y != 0, "expression division by zero");
        *x /= y;
    }
}

/// In-place lane-batched two-sided clamp.
pub fn clamp_lanes(a: &mut [i64], lo: i64, hi: i64) {
    let mut aq = a.chunks_exact_mut(4);
    for x in &mut aq {
        x[0] = x[0].clamp(lo, hi);
        x[1] = x[1].clamp(lo, hi);
        x[2] = x[2].clamp(lo, hi);
        x[3] = x[3].clamp(lo, hi);
    }
    for x in aq.into_remainder() {
        *x = (*x).clamp(lo, hi);
    }
}

/// The SWAR partition kernel: `fanout`-way CRC32-C row-id partitioning
/// of `keys`, row ids offset by `base` (callers partition chunk
/// `[base, base + keys.len())` of a larger column). Keys stream through
/// four CRC lanes on `kernel`'s engine (table-driven or `crc32q`); the
/// tail (< 4 keys) uses the single-key engine. Hash values — and
/// therefore partition contents and row order — are bit-identical to
/// the bit-serial scalar loop.
pub fn partition_row_ids(
    keys: &[i64],
    base: usize,
    fanout: u64,
    kernel: Kernel,
) -> Vec<Vec<usize>> {
    assert!(fanout > 0, "fanout must be positive");
    // CRC spreads rows near-uniformly; sizing each bucket for its
    // expected share (plus slack) keeps the hot loop free of realloc
    // copies without changing contents or order.
    let per_bucket = keys.len() / fanout as usize + keys.len() / (8 * fanout as usize) + 8;
    let mut parts: Vec<Vec<usize>> = (0..fanout).map(|_| Vec::with_capacity(per_bucket)).collect();
    let mut quads = keys.chunks_exact(4);
    let mut r = base;
    for quad in &mut quads {
        let h = hash_x4(kernel, [quad[0] as u64, quad[1] as u64, quad[2] as u64, quad[3] as u64]);
        parts[(h[0] as u64 % fanout) as usize].push(r);
        parts[(h[1] as u64 % fanout) as usize].push(r + 1);
        parts[(h[2] as u64 % fanout) as usize].push(r + 2);
        parts[(h[3] as u64 % fanout) as usize].push(r + 3);
        r += 4;
    }
    for (j, &k) in quads.remainder().iter().enumerate() {
        parts[(hash1(kernel, k as u64) as u64 % fanout) as usize].push(r + j);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_default_is_swar_and_override_sticks() {
        // The knob may already be resolved by a sibling test; exercise
        // the setter round trip, then restore the resolved default.
        let before = kernel();
        set_kernel(Kernel::Scalar);
        assert_eq!(kernel(), Kernel::Scalar);
        set_kernel(Kernel::Swar);
        assert_eq!(kernel(), Kernel::Swar);
        set_kernel(Kernel::HwCrc);
        // HwCrc resolves to itself on SSE4.2 hosts and degrades to Swar
        // elsewhere — never to Scalar, and always vectorized.
        let resolved = kernel();
        assert_eq!(resolved, if hw_crc_available() { Kernel::HwCrc } else { Kernel::Swar });
        assert!(resolved.vectorized());
        assert!(!Kernel::Scalar.vectorized());
        set_kernel(before);
    }

    #[test]
    fn hash_dispatch_is_engine_invariant() {
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            let want = crc32c_u64(key);
            for k in [Kernel::Scalar, Kernel::Swar, Kernel::HwCrc] {
                assert_eq!(hash1(k, key), want, "{k:?} key {key:#x}");
                assert_eq!(hash_x4(k, [key; 4]), [want; 4], "{k:?} key {key:#x}");
                assert_eq!(hash_wide(k, &[key]), want, "{k:?} key {key:#x}");
                assert_eq!(hash_wide_x4(k, [&[key, 1], &[key, 1], &[key, 1], &[key, 1]]), {
                    [crc32c_wide(&[key, 1]); 4]
                });
            }
        }
    }

    #[test]
    fn filter_band_matches_per_row_semantics() {
        for len in [0usize, 1, 5, 63, 64, 65, 128, 200, 1000] {
            let data: Vec<i64> =
                (0..len as i64).map(|i| (i * 37 % 101) - 50 + (i % 7) * 1000).collect();
            let bv = filter_band(&data, -10, 900);
            assert_eq!(bv.len(), len);
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(bv.get(i), (-10..=900).contains(&x), "len={len} row={i}");
            }
        }
    }

    #[test]
    fn filter_band_handles_extremes() {
        let data = vec![i64::MIN, i64::MAX, 0, -1, 1];
        let all = filter_band(&data, i64::MIN, i64::MAX);
        assert_eq!(all.count(), data.len());
        let none = filter_band(&data, 3, 2); // empty band
        assert_eq!(none.count(), 0);
    }

    #[test]
    fn gt_mask_matches_per_row_compares() {
        let block: Vec<i64> =
            (0..64).map(|i| [i64::MIN, -3, 0, 7, i64::MAX][i as usize % 5]).collect();
        for t in [i64::MIN, -3, 0, 6, 7, i64::MAX] {
            let w = gt_mask_word(&block, t);
            for (i, &v) in block.iter().enumerate() {
                assert_eq!(w >> i & 1 == 1, v > t, "t={t} row={i}");
            }
        }
        // No row exceeds i64::MAX, so the word is empty (the guard the
        // top-k kernel relies on instead of computing t + 1).
        assert_eq!(gt_mask_word(&block, i64::MAX), 0);
    }

    #[test]
    fn sort_keys_preserve_order() {
        let vals = [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX];
        let keys = sort_keys(&vals);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "normalization must preserve order");
        // Lane batches and tail agree with the per-value map.
        let many: Vec<i64> = (0..103).map(|i| i * 31 - 1500).collect();
        assert_eq!(sort_keys(&many), many.iter().map(|&v| sort_key(v)).collect::<Vec<_>>());
    }

    #[test]
    fn composite_keys_compare_like_rows() {
        let a: Vec<i64> = vec![1, 1, -5, i64::MIN, 1];
        let b: Vec<i64> = vec![9, -9, 0, i64::MAX, 9];
        let flat = composite_sort_keys(&[&a, &b]);
        assert_eq!(flat.len(), 10);
        for x in 0..a.len() {
            for y in 0..a.len() {
                let want = (a[x], b[x]).cmp(&(a[y], b[y]));
                let got = flat[x * 2..x * 2 + 2].cmp(&flat[y * 2..y * 2 + 2]);
                assert_eq!(got, want, "rows {x} vs {y}");
            }
        }
    }

    #[test]
    fn lane_binops_match_scalar_ops() {
        let a: Vec<i64> = (0..11).map(|i| i * 1000 - 5000).collect();
        let b: Vec<i64> = (0..11).map(|i| i - 5).collect();
        let mut add = a.clone();
        add_lanes(&mut add, &b);
        let mut sub = a.clone();
        sub_lanes(&mut sub, &b);
        let mut mul = a.clone();
        mul_lanes(&mut mul, &b);
        let mut clamp = a.clone();
        clamp_lanes(&mut clamp, -100, 100);
        for i in 0..a.len() {
            assert_eq!(add[i], a[i].wrapping_add(b[i]));
            assert_eq!(sub[i], a[i].wrapping_sub(b[i]));
            assert_eq!(mul[i], a[i].wrapping_mul(b[i]));
            assert_eq!(clamp[i], a[i].clamp(-100, 100));
        }
        let mut div = a.clone();
        let ones: Vec<i64> = (0..11).map(|i| i + 1).collect();
        div_lanes(&mut div, &ones);
        for i in 0..a.len() {
            assert_eq!(div[i], a[i] / ones[i]);
        }
    }

    #[test]
    #[should_panic(expected = "expression division by zero")]
    fn div_lanes_panics_like_the_evaluator() {
        div_lanes(&mut [1, 2], &[1, 0]);
    }

    #[test]
    fn swar_field_compares_match_scalar() {
        // Every field width against exhaustive small fields / sampled
        // large ones: flags must sit at MSB positions and agree with
        // the per-field unsigned compares.
        for w in [2usize, 4, 8, 16, 32] {
            let fields = 64 / w;
            let fmax = (1u128 << w) - 1;
            let ones = u64::MAX / (fmax as u64);
            let h = ones << (w - 1);
            let samples: Vec<u64> = (0..=fmax.min(40))
                .map(|v| v as u64)
                .chain([fmax as u64, fmax as u64 - 1, fmax as u64 / 2])
                .collect();
            let mut x = 0u64;
            for (f, &s) in samples.iter().cycle().take(fields).enumerate() {
                x |= s.rotate_left(f as u32) & ((fmax as u64) << (f * w));
            }
            for &c in &samples {
                let cb = c.wrapping_mul(ones);
                let le = le_flags(x, cb, h);
                let ge = ge_flags(x, cb, h);
                assert_eq!(le & !h, 0, "w={w}: le flags must stay at MSBs");
                assert_eq!(ge & !h, 0, "w={w}: ge flags must stay at MSBs");
                for f in 0..fields {
                    let field = (x >> (f * w)) & (fmax as u64);
                    let bit = 1u64 << (f * w + w - 1);
                    assert_eq!(le & bit != 0, field <= c, "w={w} f={f} x={field} c={c} le");
                    assert_eq!(ge & bit != 0, field >= c, "w={w} f={f} x={field} c={c} ge");
                }
            }
        }
    }

    #[test]
    fn compress_gathers_strided_bits() {
        assert_eq!(compress_even(0xAAAA_AAAA_AAAA_AAAA), 0); // odd bits drop
        assert_eq!(compress_even(0x5555_5555_5555_5555), 0xFFFF_FFFF);
        for stride in [1usize, 2, 4, 8, 16, 32] {
            let fields = 64 / stride;
            // An alternating flag pattern at stride positions.
            let mut x = 0u64;
            for f in (0..fields).step_by(2) {
                x |= 1u64 << (f * stride);
            }
            let got = compress_stride(x, stride);
            let mut want = 0u64;
            for f in (0..fields).step_by(2) {
                want |= 1u64 << f;
            }
            assert_eq!(got, want, "stride={stride}");
        }
    }

    #[test]
    fn packed_filter_matches_flat_filter() {
        use crate::column::PACK_CHUNK_ROWS;
        // One dataset per bit width (plus extremes), several bands each
        // — including bands that zone-map whole chunks in and out,
        // empty bands, and chunk-straddling lengths.
        let datasets: Vec<Vec<i64>> = vec![
            vec![],
            vec![7; 2 * PACK_CHUNK_ROWS + 17],  // constant chunks
            (0..2049).map(|i| i % 2).collect(), // 1 bit
            (0..1500).map(|i| -2 + (i * 7) % 4).collect(), // 2 bits
            (0..1025).map(|i| (i * 11) % 13).collect(), // 4 bits
            (0..4096).map(|i| 1000 + (i * 37) % 200).collect(), // 8 bits
            (0..777).map(|i| (i * 997) % 40_000 - 20_000).collect(), // 16 bits
            (0..2500).map(|i| (i * 2_654_435_761) % (1i64 << 31)).collect(), // 32 bits
            (0..300).map(|i| i * (1i64 << 40) - (1i64 << 47)).collect(), // 64 bits
            vec![i64::MIN, i64::MAX, 0, -1, 1, i64::MIN + 1, i64::MAX - 1],
        ];
        for data in &datasets {
            let p = PackedColumn::encode(data);
            let mut bands: Vec<(i64, i64)> = vec![
                (i64::MIN, i64::MAX),
                (0, 0),
                (3, 2), // empty (lo > hi)
                (i64::MIN, 0),
                (0, i64::MAX),
            ];
            if !data.is_empty() {
                let (&lo, &hi) = (data.iter().min().unwrap(), data.iter().max().unwrap());
                bands.extend([
                    (lo, hi),
                    (lo.saturating_add(1), hi.saturating_sub(1)),
                    (lo, lo),
                    (hi, hi),
                ]);
            }
            for (lo, hi) in bands {
                let want = filter_band(data, lo, hi);
                let got = filter_band_packed(&p, lo, hi);
                assert_eq!(got.words(), want.words(), "rows={} band=[{lo},{hi}]", data.len());
            }
        }
    }

    #[test]
    fn partition_matches_scalar_crc_and_offsets() {
        let keys: Vec<i64> = (0..103).map(|i| i * 7919 - 400).collect();
        for fanout in [1u64, 2, 7, 32] {
            let mut want: Vec<Vec<usize>> = vec![Vec::new(); fanout as usize];
            for (r, &k) in keys.iter().enumerate() {
                want[(crc32c_u64(k as u64) as u64 % fanout) as usize].push(10 + r);
            }
            for kernel in [Kernel::Swar, Kernel::HwCrc] {
                let parts = partition_row_ids(&keys, 10, fanout, kernel);
                assert_eq!(parts, want, "fanout={fanout} kernel={kernel:?}");
            }
        }
    }
}
