//! Host-side SWAR execution kernels.
//!
//! The paper's dpCores earn their throughput with bit-vector and hashing
//! tricks: BVLD/FILT produce one selection bit per row in a 64-bit
//! accumulator, and the DMS hash engine partitions on a single-cycle
//! CRC32. This module ports the same structure to the *host* inner
//! loops: hand-rolled multi-lane kernels over packed `u64` words —
//! stable Rust, no `std::simd` — behind the existing `execute` entry
//! points.
//!
//! Three kernels, mirroring the paper's primitives:
//!
//! 1. **Filter** ([`filter_band`]): predicate evaluation emits whole
//!    [`BitVec`] words 64 rows at a time. Four interleaved lane
//!    accumulators (rows `4k`, `4k+1`, `4k+2`, `4k+3`) break the OR
//!    dependency chain, and each band test compiles to branch-free
//!    compare-and-mask (`setcc`) — the host analogue of FILT shifting
//!    bits into its accumulator.
//! 2. **Partition** ([`partition_row_ids`]): CRC32-C row-id
//!    partitioning using the table-driven 4-lane
//!    [`dpu_isa::hash::crc32c_u64_x4`] — four independent CRC streams
//!    in flight, the stream-split trick hardware CRC units use.
//! 3. **Group-by probe** ([`crate::agg::GroupBySpec::execute_vector`]):
//!    lane-batched key hashing (4 keys per CRC batch) feeding an
//!    open-addressed, allocation-free accumulator table with
//!    branch-free min/max/sum updates.
//!
//! Every kernel is **bit-identical** to its scalar twin — same words,
//! same row order, same accumulator values — at every table size,
//! chunking, and `DPU_THREADS`; `tests/vector_properties.rs` pins this
//! differentially. The `DPU_VECTOR` env knob (`off`/`0`/`false`/
//! `scalar` → scalar, anything else → SWAR, default SWAR) selects the
//! kernel process-wide; [`set_kernel`] overrides it in-process for
//! benches that compare both arms.

use std::sync::atomic::{AtomicU8, Ordering};

use dpu_isa::hash::{crc32c_u64_table, crc32c_u64_x4};

use crate::bitvec::BitVec;

/// Which implementation the SQL kernels run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The reference scalar loops (the exact pre-vectorization paths).
    Scalar,
    /// The multi-lane SWAR kernels (bit-identical, faster).
    Swar,
}

/// The resolved kernel choice; 0 = not yet resolved from `DPU_VECTOR`.
static KERNEL: AtomicU8 = AtomicU8::new(0);

/// The process-wide kernel: the last [`set_kernel`] value, else
/// `DPU_VECTOR` (`off`, `0`, `false` or `scalar` → [`Kernel::Scalar`]),
/// else [`Kernel::Swar`]. Resolved once, like `DPU_THREADS`.
pub fn kernel() -> Kernel {
    match KERNEL.load(Ordering::SeqCst) {
        1 => Kernel::Scalar,
        2 => Kernel::Swar,
        _ => {
            let k = match std::env::var("DPU_VECTOR").ok().as_deref() {
                Some("off") | Some("0") | Some("false") | Some("scalar") => Kernel::Scalar,
                _ => Kernel::Swar,
            };
            set_kernel(k);
            k
        }
    }
}

/// Overrides the kernel choice for subsequent [`kernel`] calls (benches
/// and tests that compare both arms in one process).
pub fn set_kernel(k: Kernel) {
    KERNEL.store(if k == Kernel::Scalar { 1 } else { 2 }, Ordering::SeqCst);
}

/// Branch-free inclusive band test: 1 if `lo <= x <= hi`, else 0. Both
/// comparisons lower to flag-setting compares (no data-dependent
/// branch), exactly [`crate::filter::CompareOp::matches`] semantics.
#[inline(always)]
fn in_band(x: i64, lo: i64, hi: i64) -> u64 {
    ((x >= lo) & (x <= hi)) as u64
}

/// The SWAR filter kernel: evaluates the band `[lo, hi]` over a column,
/// emitting one packed `u64` selection word per 64 rows (tail word
/// masked). Within each 64-row block, four interleaved lane
/// accumulators OR compare-and-mask results at bit positions `4k + lane`
/// so the four chains retire independently.
pub fn filter_band(data: &[i64], lo: i64, hi: i64) -> BitVec {
    let len = data.len();
    let mut words = Vec::with_capacity(len.div_ceil(64));
    let mut blocks = data.chunks_exact(64);
    for block in &mut blocks {
        let (mut l0, mut l1, mut l2, mut l3) = (0u64, 0u64, 0u64, 0u64);
        for k in 0..16 {
            let b = k * 4;
            l0 |= in_band(block[b], lo, hi) << b;
            l1 |= in_band(block[b + 1], lo, hi) << (b + 1);
            l2 |= in_band(block[b + 2], lo, hi) << (b + 2);
            l3 |= in_band(block[b + 3], lo, hi) << (b + 3);
        }
        words.push((l0 | l1) | (l2 | l3));
    }
    let tail = blocks.remainder();
    if !tail.is_empty() {
        let mut w = 0u64;
        for (k, &x) in tail.iter().enumerate() {
            w |= in_band(x, lo, hi) << k;
        }
        words.push(w);
    }
    BitVec::from_words(len, words)
}

/// The SWAR partition kernel: `fanout`-way CRC32-C row-id partitioning
/// of `keys`, row ids offset by `base` (callers partition chunk
/// `[base, base + keys.len())` of a larger column). Keys stream through
/// the 4-lane table-driven CRC; the tail (< 4 keys) uses the single-key
/// table CRC. Hash values — and therefore partition contents and row
/// order — are bit-identical to the bit-serial scalar loop.
pub fn partition_row_ids(keys: &[i64], base: usize, fanout: u64) -> Vec<Vec<usize>> {
    assert!(fanout > 0, "fanout must be positive");
    // CRC spreads rows near-uniformly; sizing each bucket for its
    // expected share (plus slack) keeps the hot loop free of realloc
    // copies without changing contents or order.
    let per_bucket = keys.len() / fanout as usize + keys.len() / (8 * fanout as usize) + 8;
    let mut parts: Vec<Vec<usize>> = (0..fanout).map(|_| Vec::with_capacity(per_bucket)).collect();
    let mut quads = keys.chunks_exact(4);
    let mut r = base;
    for quad in &mut quads {
        let h = crc32c_u64_x4([quad[0] as u64, quad[1] as u64, quad[2] as u64, quad[3] as u64]);
        parts[(h[0] as u64 % fanout) as usize].push(r);
        parts[(h[1] as u64 % fanout) as usize].push(r + 1);
        parts[(h[2] as u64 % fanout) as usize].push(r + 2);
        parts[(h[3] as u64 % fanout) as usize].push(r + 3);
        r += 4;
    }
    for (j, &k) in quads.remainder().iter().enumerate() {
        parts[(crc32c_u64_table(k as u64) as u64 % fanout) as usize].push(r + j);
    }
    parts
}

#[cfg(test)]
mod tests {
    use dpu_isa::hash::crc32c_u64;

    use super::*;

    #[test]
    fn env_default_is_swar_and_override_sticks() {
        // The knob may already be resolved by a sibling test; exercise
        // the setter round trip, then restore the resolved default.
        let before = kernel();
        set_kernel(Kernel::Scalar);
        assert_eq!(kernel(), Kernel::Scalar);
        set_kernel(Kernel::Swar);
        assert_eq!(kernel(), Kernel::Swar);
        set_kernel(before);
    }

    #[test]
    fn filter_band_matches_per_row_semantics() {
        for len in [0usize, 1, 5, 63, 64, 65, 128, 200, 1000] {
            let data: Vec<i64> =
                (0..len as i64).map(|i| (i * 37 % 101) - 50 + (i % 7) * 1000).collect();
            let bv = filter_band(&data, -10, 900);
            assert_eq!(bv.len(), len);
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(bv.get(i), (-10..=900).contains(&x), "len={len} row={i}");
            }
        }
    }

    #[test]
    fn filter_band_handles_extremes() {
        let data = vec![i64::MIN, i64::MAX, 0, -1, 1];
        let all = filter_band(&data, i64::MIN, i64::MAX);
        assert_eq!(all.count(), data.len());
        let none = filter_band(&data, 3, 2); // empty band
        assert_eq!(none.count(), 0);
    }

    #[test]
    fn partition_matches_scalar_crc_and_offsets() {
        let keys: Vec<i64> = (0..103).map(|i| i * 7919 - 400).collect();
        for fanout in [1u64, 2, 7, 32] {
            let parts = partition_row_ids(&keys, 10, fanout);
            let mut want: Vec<Vec<usize>> = vec![Vec::new(); fanout as usize];
            for (r, &k) in keys.iter().enumerate() {
                want[(crc32c_u64(k as u64) as u64 % fanout) as usize].push(10 + r);
            }
            assert_eq!(parts, want, "fanout={fanout}");
        }
    }
}
