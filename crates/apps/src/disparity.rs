//! Stereo disparity (§5.6).
//!
//! Disparity computes, for each pixel, the shift at which the left and
//! right images best match (minimum absolute difference over a window).
//! The kernels exercise three access patterns (Figure 17): row-major,
//! columnar, and "pixelated" — and the paper's point is that the
//! software-managed DMEM via the DMS makes the awkward patterns easy:
//! "the pixelated access pattern is reduced to gathering pixels with two
//! different strides into two sections of the DMEM". A fine-grained
//! (tile-per-core, lockstep) decomposition wins over a coarse-grained
//! (shift-per-core) one thanks to low-latency ATE barriers, at 8.6×
//! performance/watt over the OpenMP baseline.

use xeon_model::Xeon;

/// A grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixels.
    pub pixels: Vec<u8>,
}

impl Image {
    /// A black image.
    pub fn new(width: usize, height: usize) -> Self {
        Image { width, height, pixels: vec![0; width * height] }
    }

    /// Pixel accessor (0 outside bounds, simplifying window edges).
    pub fn at(&self, x: i64, y: i64) -> i64 {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            0
        } else {
            self.pixels[y as usize * self.width + x as usize] as i64
        }
    }
}

/// A synthetic stereo pair: a textured scene shifted by a known,
/// depth-dependent amount.
pub fn synthetic_pair(width: usize, height: usize, true_shift: usize, seed: u64) -> (Image, Image) {
    use dpu_sim::SplitMix64;
    let mut rng = SplitMix64::new(seed);
    let mut left = Image::new(width, height);
    for p in left.pixels.iter_mut() {
        *p = rng.next_below(256) as u8;
    }
    // Right image: left shifted by `true_shift` (with wrap for texture).
    let mut right = Image::new(width, height);
    for y in 0..height {
        for x in 0..width {
            let sx = (x + true_shift) % width;
            right.pixels[y * width + x] = left.pixels[y * width + sx];
        }
    }
    (left, right)
}

/// Computes the disparity map by SAD block matching over windows of
/// `(2·radius+1)²` pixels for shifts `0..=max_shift`.
pub fn disparity_map(left: &Image, right: &Image, max_shift: usize, radius: i64) -> Vec<u8> {
    assert_eq!((left.width, left.height), (right.width, right.height), "image size mismatch");
    let (w, h) = (left.width, left.height);
    let mut out = vec![0u8; w * h];
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let mut best = (i64::MAX, 0usize);
            for shift in 0..=max_shift {
                let mut sad = 0i64;
                for dy in -radius..=radius {
                    for dx in -radius..=radius {
                        sad += (left.at(x + dx + shift as i64, y + dy) - right.at(x + dx, y + dy))
                            .abs();
                    }
                }
                if sad < best.0 {
                    best = (sad, shift);
                }
            }
            out[y as usize * w + x as usize] = best.1 as u8;
        }
    }
    out
}

/// Parallel decomposition strategies (§5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decomposition {
    /// Tiles of pixels per core, kernels in lockstep (needs barriers).
    FineGrained,
    /// One pixel-shift per core, final aggregation (poor bandwidth use).
    CoarseGrained,
}

/// Seconds for the DPU to compute a disparity map.
///
/// Both decompositions stream `(max_shift+1)` passes over both images;
/// fine-grained overlaps compute with the DMS at 90% stream efficiency
/// (strided/pixelated gathers handled by the DMS), while coarse-grained
/// re-reads whole images per core with poor locality (≈40%) and skips
/// barrier costs.
pub fn dpu_seconds(w: usize, h: usize, max_shift: usize, decomp: Decomposition) -> f64 {
    let passes = (max_shift + 1) as f64;
    let bytes = (2 * w * h) as f64 * passes;
    // SAD compute: ~3 cycles per window pixel pair with running-sum reuse
    // amortizing the window to ~3 ops/pixel/shift.
    let compute_cycles = (w * h) as f64 * passes * 3.0;
    let compute = compute_cycles / (32.0 * 800.0e6);
    match decomp {
        Decomposition::FineGrained => {
            // ATE barrier per kernel phase: cheap (tens of cycles × passes).
            let barriers = passes * 200.0 / 800.0e6;
            (bytes / (0.90 * dpu_sql::plan::DPU_STREAM_BW)).max(compute) + barriers
        }
        Decomposition::CoarseGrained => {
            (bytes / (0.40 * dpu_sql::plan::DPU_STREAM_BW)).max(compute)
        }
    }
}

/// Seconds for the OpenMP x86 baseline: the columnar/pixelated patterns
/// waste cache lines, capping effective bandwidth at ≈70% even with
/// tiling.
pub fn xeon_seconds(w: usize, h: usize, max_shift: usize, xeon: &Xeon) -> f64 {
    let passes = (max_shift + 1) as f64;
    let bytes = (2 * w * h) as f64 * passes;
    let compute =
        (w * h) as f64 * passes * 1.0 / (xeon.config.threads as f64 * xeon.config.clock_hz);
    (bytes / (0.70 * xeon.config.stream_bw)).max(compute)
}

/// The Figure 14 disparity gain (fine-grained DPU vs OpenMP).
pub fn gain(w: usize, h: usize, max_shift: usize, xeon: &Xeon) -> f64 {
    let dpu = dpu_seconds(w, h, max_shift, Decomposition::FineGrained);
    let x = xeon_seconds(w, h, max_shift, xeon);
    (x / dpu) * (xeon.tdp_watts() / 6.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_known_uniform_shift() {
        let (l, r) = synthetic_pair(64, 32, 5, 3);
        let d = disparity_map(&l, &r, 10, 2);
        // Away from the wrap seam, the winning shift is the true one.
        let mut correct = 0;
        let mut total = 0;
        for y in 4..28 {
            for x in 4..48 {
                total += 1;
                if d[y * 64 + x] == 5 {
                    correct += 1;
                }
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.9,
            "only {correct}/{total} pixels recovered the shift"
        );
    }

    #[test]
    fn zero_shift_pair_maps_to_zero() {
        let (l, _) = synthetic_pair(32, 16, 0, 9);
        let d = disparity_map(&l, &l, 6, 1);
        assert!(d.iter().filter(|&&v| v == 0).count() > d.len() * 9 / 10);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_images_rejected() {
        let a = Image::new(8, 8);
        let b = Image::new(9, 8);
        disparity_map(&a, &b, 1, 1);
    }

    #[test]
    fn out_of_bounds_reads_are_zero() {
        let img = Image::new(4, 4);
        assert_eq!(img.at(-1, 0), 0);
        assert_eq!(img.at(0, 99), 0);
    }

    #[test]
    fn fine_grained_beats_coarse_grained() {
        let fine = dpu_seconds(640, 480, 32, Decomposition::FineGrained);
        let coarse = dpu_seconds(640, 480, 32, Decomposition::CoarseGrained);
        assert!(fine < coarse, "fine {fine:.4}s should beat coarse {coarse:.4}s");
    }

    #[test]
    fn gain_is_about_8_6x() {
        let g = gain(640, 480, 32, &Xeon::new());
        assert!((7.0..10.5).contains(&g), "disparity gain {g:.2}");
    }
}
