//! HyperLogLog throughput models (§5.4, Figure 14).
//!
//! The sketch itself lives in [`dpu_sql::hll`] so the query planner can
//! consume it for NDV statistics without pulling in the apps crate; this
//! module re-exports it and keeps the dpCore/Xeon throughput models that
//! reproduce the paper's Figure 14 comparison.

use dpu_isa::hash::HashKind;
use dpu_isa::{OpCounts, PipelineModel};
use xeon_model::Xeon;

pub use dpu_sql::hll::{HyperLogLog, RankMethod};

/// Per-item operation counts of the DPU inner loop.
pub fn dpu_item_counts(hash: HashKind, rank: RankMethod) -> OpCounts {
    let model = PipelineModel::default();
    OpCounts {
        // Bucket index extraction + register compare/update.
        alu: hash.alu_ops() + 3,
        mul: hash.mul_ops(),
        mul_stall_cycles: hash.mul_ops() * model.mul_latency(hash.mul_operand()),
        loads: 2,  // item + register
        stores: 1, // register update (amortized upper bound)
        branches: 1,
        mispredicts: 0,
        special: 1, // POPC
        dependency_stalls: rank.dpcore_cycles().saturating_sub(1),
    }
}

/// DPU throughput in items/second for 8-byte items: roofline of the
/// counted inner loop across 32 cores against the DMS stream.
pub fn dpu_items_per_sec(hash: HashKind, rank: RankMethod) -> f64 {
    let cycles = dpu_item_counts(hash, rank).dpcore_cycles(&PipelineModel::default());
    let compute = 32.0 * 800.0e6 / cycles as f64;
    let memory = dpu_sql::plan::DPU_STREAM_BW / 8.0;
    compute.min(memory)
}

/// Xeon throughput in items/second. The paper's baseline "uses atomics
/// for synchronization and SIMD intrinsics": Murmur64 vectorizes well
/// (~10 cycles/item effective), while its scalar CRC32+branchy register
/// update path costs ≈26 cycles/item — both bounded by streaming 8-byte
/// items.
pub fn xeon_items_per_sec(hash: HashKind, xeon: &Xeon) -> f64 {
    let cycles_per_item: f64 = match hash {
        HashKind::Crc32 => 26.0,
        HashKind::Murmur64 => 10.0,
    };
    let compute = xeon.config.threads as f64 * xeon.config.clock_hz / cycles_per_item;
    let memory = xeon.config.stream_bw / 8.0;
    compute.min(memory)
}

/// The Figure 14 HLL gain for a hash function.
pub fn gain(hash: HashKind, xeon: &Xeon) -> f64 {
    let dpu = dpu_items_per_sec(hash, RankMethod::TrailingZeros);
    let x = xeon_items_per_sec(hash, xeon);
    (dpu / 6.0) / (x / xeon.tdp_watts())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_sketch_estimates() {
        // The sketch moved to dpu-sql; the apps-facing path must keep
        // working (this is the old doc example).
        let mut h = HyperLogLog::new(12, HashKind::Crc32);
        for i in 0..50_000u64 {
            h.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        let e = h.estimate();
        assert!((e - 50_000.0).abs() / 50_000.0 < 0.05, "estimate {e}");
    }

    #[test]
    fn crc_is_memory_bound_murmur_is_compute_bound_on_dpu() {
        let crc = dpu_items_per_sec(HashKind::Crc32, RankMethod::TrailingZeros);
        let mur = dpu_items_per_sec(HashKind::Murmur64, RankMethod::TrailingZeros);
        // CRC saturates the DMS stream (9.6 GB/s / 8 B = 1.2 G items/s).
        assert!((crc - 1.2e9).abs() / 1.2e9 < 0.01, "crc {crc:.3e}");
        // Murmur's multiplier stalls dominate.
        assert!(mur < 0.8 * crc, "murmur {mur:.3e} vs crc {crc:.3e}");
    }

    #[test]
    fn nlz_slows_the_inner_loop() {
        let fast = dpu_item_counts(HashKind::Crc32, RankMethod::TrailingZeros)
            .dpcore_cycles(&PipelineModel::default());
        let slow = dpu_item_counts(HashKind::Crc32, RankMethod::LeadingZeros)
            .dpcore_cycles(&PipelineModel::default());
        assert_eq!(slow - fast, 13 - 4);
    }

    #[test]
    fn gains_match_paper_shape() {
        let xeon = Xeon::new();
        let crc_gain = gain(HashKind::Crc32, &xeon);
        let mur_gain = gain(HashKind::Murmur64, &xeon);
        // §5.4: CRC "almost 9×"; Murmur much worse on the DPU.
        assert!((7.5..10.5).contains(&crc_gain), "CRC gain {crc_gain:.2}");
        assert!(mur_gain < 0.6 * crc_gain, "Murmur gain {mur_gain:.2}");
        assert!(mur_gain > 1.0, "still beats x86 per watt");
    }
}
