//! The DPU's co-designed applications (§5, Table 3).
//!
//! Six workloads spanning the paper's application domains, each
//! implemented twice over: a *functional* implementation whose results
//! are verified by tests, and a *platform cost* layer that prices the
//! same work on the simulated DPU and on the Xeon baseline model to
//! regenerate the Figure 14 performance/watt gains.
//!
//! | Workload | Domain | Module |
//! |---|---|---|
//! | Support Vector Machines | Machine learning | [`svm`] |
//! | Similarity search (SpMM) | Text analytics | [`simsearch`] |
//! | SQL operations | SQL analytics | `dpu-sql` crate |
//! | HyperLogLog | NoSQL analytics | [`hll`] |
//! | JSON parsing | NoSQL analytics | [`json`] |
//! | Disparity | Machine vision | [`disparity`] |

pub mod disparity;
pub mod hll;
pub mod json;
pub mod simsearch;
pub mod svm;

pub use hll::HyperLogLog;
pub use json::{generate_records, BranchyParser, TableParser};
pub use simsearch::{InvertedIndex, SimSearch};
pub use svm::{Kernel, SmoTrainer, SvmDataset};
