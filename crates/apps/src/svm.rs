//! Support vector machine training via parallel SMO (§5.1).
//!
//! The paper implements "a variation of the Parallel SMO algorithm
//! proposed by Cao et al.": each dpCore scans its shard of the samples
//! for the maximally KKT-violating pair, the per-core candidates are
//! reduced at a master core over the ATE, and the pair's coefficients are
//! updated with kernels generated on the fly (no kernel cache — the DMS
//! streams samples at line speed instead). All arithmetic is Q10.22
//! fixed point; the paper observed convergence in ~35% fewer iterations
//! with no accuracy loss.

use dpu_fixed::{dot, Q10_22};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xeon_model::Xeon;

/// A labelled dataset with features normalized into the Q10.22 sweet
/// spot.
#[derive(Debug, Clone)]
pub struct SvmDataset {
    /// Sample features, row-major (n × d).
    pub x: Vec<Vec<Q10_22>>,
    /// Labels in {-1, +1}.
    pub y: Vec<i8>,
}

impl SvmDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// Generates a HIGGS-shaped synthetic binary classification problem:
    /// `n` samples of `dims` features drawn from two Gaussian clusters
    /// separated by `margin` standard deviations.
    pub fn synthetic(n: usize, dims: usize, margin: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        // Cluster direction: all-ones normalized.
        let shift = margin / (dims as f64).sqrt();
        for i in 0..n {
            let label: i8 = if i % 2 == 0 { 1 } else { -1 };
            let mut row = Vec::with_capacity(dims);
            for _ in 0..dims {
                let noise: f64 = rng.gen_range(-1.0..1.0);
                row.push(Q10_22::from_f64(noise + label as f64 * shift));
            }
            x.push(row);
            y.push(label);
        }
        SvmDataset { x, y }
    }
}

/// The kernel function (generated on the fly per §5.1 — no kernel cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// `K(x, y) = x·y`.
    Linear,
    /// `K(x, y) = exp(-γ‖x−y‖²)` with γ in Q10.22 (uses the fixed-point
    /// `exp` the dpCore library provides).
    Rbf {
        /// Kernel width, as raw Q10.22 bits (Copy-friendly).
        gamma_raw: i32,
    },
}

impl Kernel {
    /// An RBF kernel with the given width.
    pub fn rbf(gamma: f64) -> Self {
        Kernel::Rbf { gamma_raw: Q10_22::from_f64(gamma).raw() }
    }

    /// Evaluates the kernel on two samples.
    pub fn eval(self, a: &[Q10_22], b: &[Q10_22]) -> Q10_22 {
        match self {
            Kernel::Linear => dot(a, b),
            Kernel::Rbf { gamma_raw } => {
                let gamma = Q10_22::from_raw(gamma_raw);
                let mut d2 = Q10_22::ZERO;
                for (&x, &y) in a.iter().zip(b) {
                    let d = x - y;
                    d2 += d * d;
                }
                (-(gamma * d2)).exp()
            }
        }
    }
}

/// A trained (linear-kernel) model.
#[derive(Debug, Clone)]
pub struct SvmModel {
    /// Weight vector.
    pub w: Vec<Q10_22>,
    /// Bias.
    pub b: Q10_22,
    /// SMO iterations to convergence.
    pub iterations: u32,
}

impl SvmModel {
    /// Classifies one sample.
    pub fn predict(&self, x: &[Q10_22]) -> i8 {
        if (dot(&self.w, x) + self.b) >= Q10_22::ZERO {
            1
        } else {
            -1
        }
    }

    /// Fraction of correctly classified samples.
    pub fn accuracy(&self, data: &SvmDataset) -> f64 {
        let correct = data.x.iter().zip(&data.y).filter(|(x, &y)| self.predict(x) == y).count();
        correct as f64 / data.len() as f64
    }
}

/// The parallel SMO trainer.
#[derive(Debug, Clone)]
pub struct SmoTrainer {
    /// Regularization bound.
    pub c: Q10_22,
    /// KKT tolerance.
    pub tol: Q10_22,
    /// Iteration cap.
    pub max_iter: u32,
    /// Worker shards (dpCores cooperating on the violating-pair search).
    pub workers: usize,
}

impl Default for SmoTrainer {
    fn default() -> Self {
        SmoTrainer {
            c: Q10_22::from_f64(1.0),
            tol: Q10_22::from_f64(0.01),
            max_iter: 2000,
            workers: 32,
        }
    }
}

impl SmoTrainer {
    /// Trains on `data` with a linear kernel, maintaining an error cache
    /// updated with generated-on-the-fly kernel rows (no kernel cache).
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn train(&self, data: &SvmDataset) -> SvmModel {
        assert!(!data.is_empty(), "empty dataset");
        let n = data.len();
        let d = data.dims();
        let mut alpha = vec![Q10_22::ZERO; n];
        // f_i = w·x_i - y_i maintained incrementally via w.
        let mut w = vec![Q10_22::ZERO; d];
        let mut b = Q10_22::ZERO;
        let mut iterations = 0;

        for _ in 0..self.max_iter {
            iterations += 1;
            // Parallel step: each of `workers` shards proposes its most
            // violating pair (max over E_i - E_j with feasibility).
            let shard = n.div_ceil(self.workers);
            let mut best_up: Option<(Q10_22, usize)> = None; // max E over y*alpha can increase
            let mut best_dn: Option<(Q10_22, usize)> = None;
            for wk in 0..self.workers {
                let (s, e) = (wk * shard, ((wk + 1) * shard).min(n));
                for (i, &a_i) in alpha.iter().enumerate().take(e).skip(s) {
                    let yi = Q10_22::from_int(data.y[i] as i32);
                    let err = dot(&w, &data.x[i]) + b - yi;
                    let can_up =
                        (data.y[i] > 0 && a_i < self.c) || (data.y[i] < 0 && a_i > Q10_22::ZERO);
                    let can_dn =
                        (data.y[i] > 0 && a_i > Q10_22::ZERO) || (data.y[i] < 0 && a_i < self.c);
                    if can_up && best_up.is_none_or(|(e0, _)| err < e0) {
                        best_up = Some((err, i));
                    }
                    if can_dn && best_dn.is_none_or(|(e0, _)| err > e0) {
                        best_dn = Some((err, i));
                    }
                }
            }
            let (Some((e_up, i)), Some((e_dn, j))) = (best_up, best_dn) else {
                break;
            };
            // Master reduction: converged when no violating pair remains.
            if e_dn - e_up <= self.tol || i == j {
                break;
            }

            // Analytic two-variable update (linear kernel).
            let kii = dot(&data.x[i], &data.x[i]);
            let kjj = dot(&data.x[j], &data.x[j]);
            let kij = dot(&data.x[i], &data.x[j]);
            let eta = kii + kjj - kij - kij;
            if eta <= Q10_22::ZERO {
                break;
            }
            let yi = Q10_22::from_int(data.y[i] as i32);
            let yj = Q10_22::from_int(data.y[j] as i32);
            let old_ai = alpha[i];
            let old_aj = alpha[j];
            // Move alpha_i up, alpha_j down along the constraint.
            let delta = ((e_dn - e_up) / eta).min(self.c).max(-self.c);
            let new_ai = (old_ai + yi * delta).clamp(Q10_22::ZERO, self.c);
            let actual = (new_ai - old_ai) * yi;
            let new_aj = (old_aj - yj * actual).clamp(Q10_22::ZERO, self.c);
            let actual_j = (old_aj - new_aj) * yj;
            alpha[i] = new_ai;
            alpha[j] = old_aj - (old_aj - new_aj);

            // Broadcast the coefficient update to the weight vector
            // (what the ATE broadcast does on the chip).
            for (k, wk) in w.iter_mut().enumerate().take(d) {
                *wk += data.x[i][k] * (alpha[i] - old_ai) * yi
                    + data.x[j][k] * (alpha[j] - old_aj) * yj;
            }
            let _ = actual_j;
            // Bias: midpoint rule.
            b -= (e_up + e_dn) / Q10_22::from_int(2);

            if (alpha[i] - old_ai).abs() <= Q10_22::EPSILON
                && (alpha[j] - old_aj).abs() <= Q10_22::EPSILON
            {
                break;
            }
        }

        SvmModel { w, b, iterations }
    }
}

/// DPU seconds per SMO iteration: the DMS streams all n×d 4-byte fixed-
/// point features while the cores compute dot products (multiplier-stall
/// bound), a roofline per §5.1.
pub fn dpu_iteration_seconds(n: u64, d: u64) -> f64 {
    let bytes = n * d * 4;
    let mem = bytes as f64 / dpu_sql::plan::DPU_STREAM_BW;
    // 8 cycles per multiply-accumulate on the variable-latency multiplier.
    let compute = (n * d * 8) as f64 / (32.0 * 800.0e6);
    mem.max(compute)
}

/// Xeon (LIBSVM) seconds per iteration: LIBSVM's sparse float rows cost
/// 8 bytes/element of traffic and its scalar kernel loop ≈4 cycles per
/// element on the paper's 18 OpenMP threads.
pub fn xeon_iteration_seconds(n: u64, d: u64, xeon: &Xeon) -> f64 {
    let mem = (n * d * 8) as f64 / xeon.config.stream_bw;
    let compute = (n * d * 4) as f64 / (18.0 * xeon.config.clock_hz);
    mem.max(compute)
}

/// The Figure 14 SVM gain, including the fixed-point iteration advantage
/// the paper reports ("converges in 35% fewer iterations, with no loss in
/// classification accuracy").
pub fn gain(n: u64, d: u64, xeon: &Xeon) -> f64 {
    let iter_ratio = 1.0 / 0.65;
    let per_iter = xeon_iteration_seconds(n, d, xeon) / dpu_iteration_seconds(n, d);
    per_iter * iter_ratio * (xeon.tdp_watts() / 6.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_data_is_balanced_and_deterministic() {
        let ds = SvmDataset::synthetic(1000, 28, 2.0, 1);
        assert_eq!(ds.len(), 1000);
        assert_eq!(ds.dims(), 28);
        let pos = ds.y.iter().filter(|&&y| y > 0).count();
        assert_eq!(pos, 500);
        let ds2 = SvmDataset::synthetic(1000, 28, 2.0, 1);
        assert_eq!(ds.y, ds2.y);
        assert_eq!(ds.x[0], ds2.x[0]);
    }

    #[test]
    fn trains_separable_data_to_high_accuracy() {
        let ds = SvmDataset::synthetic(400, 8, 3.0, 7);
        let model = SmoTrainer::default().train(&ds);
        let acc = model.accuracy(&ds);
        assert!(acc > 0.95, "training accuracy {acc}");
        assert!(model.iterations > 0);
    }

    #[test]
    fn noisy_data_still_beats_chance() {
        let ds = SvmDataset::synthetic(400, 8, 1.0, 9);
        let model = SmoTrainer::default().train(&ds);
        let acc = model.accuracy(&ds);
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn generalizes_to_unseen_samples() {
        let train = SvmDataset::synthetic(600, 12, 3.0, 11);
        let test = SvmDataset::synthetic(200, 12, 3.0, 999);
        let model = SmoTrainer::default().train(&train);
        let acc = model.accuracy(&test);
        assert!(acc > 0.9, "test accuracy {acc}");
    }

    #[test]
    fn worker_count_does_not_change_the_model() {
        let ds = SvmDataset::synthetic(300, 6, 2.5, 3);
        let m1 = SmoTrainer { workers: 1, ..Default::default() }.train(&ds);
        let m32 = SmoTrainer { workers: 32, ..Default::default() }.train(&ds);
        // The sharded argmax scans the same candidates: identical result.
        assert_eq!(m1.iterations, m32.iterations);
        assert_eq!(m1.w, m32.w);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        SmoTrainer::default().train(&SvmDataset { x: vec![], y: vec![] });
    }

    #[test]
    fn dpu_iteration_is_memory_bound_at_higgs_shape() {
        // 128K × 28 features: the DMS stream dominates the 8-cycle MACs.
        let mem = (128 * 1024 * 28 * 4) as f64 / dpu_sql::plan::DPU_STREAM_BW;
        let t = dpu_iteration_seconds(128 * 1024, 28);
        assert!((t - mem.max((128 * 1024 * 28 * 8) as f64 / 25.6e9)).abs() < 1e-9);
    }

    #[test]
    fn rbf_kernel_behaves_like_a_similarity() {
        let k = Kernel::rbf(0.5);
        let a: Vec<Q10_22> = (0..8).map(|i| Q10_22::from_f64(i as f64 * 0.1)).collect();
        // Self-similarity is 1.
        assert!((k.eval(&a, &a).to_f64() - 1.0).abs() < 1e-4);
        // Similarity decays with distance.
        let near: Vec<Q10_22> = a.iter().map(|&v| v + Q10_22::from_f64(0.1)).collect();
        let far: Vec<Q10_22> = a.iter().map(|&v| v + Q10_22::from_f64(2.0)).collect();
        let (kn, kf) = (k.eval(&a, &near).to_f64(), k.eval(&a, &far).to_f64());
        assert!(kn > kf, "near {kn} should exceed far {kf}");
        assert!(kf >= 0.0 && kn < 1.0);
        // Linear kernel is just the dot product.
        assert_eq!(Kernel::Linear.eval(&a, &a), dpu_fixed::dot(&a, &a));
    }

    #[test]
    fn rbf_separates_a_radial_dataset_where_linear_cannot() {
        // A ring dataset: class +1 inside radius, −1 outside — linearly
        // inseparable, separable by RBF distance.
        let k = Kernel::rbf(2.0);
        let inner: Vec<Q10_22> = vec![Q10_22::from_f64(0.1), Q10_22::from_f64(0.1)];
        let outer: Vec<Q10_22> = vec![Q10_22::from_f64(2.0), Q10_22::from_f64(2.0)];
        let origin: Vec<Q10_22> = vec![Q10_22::ZERO, Q10_22::ZERO];
        assert!(k.eval(&origin, &inner).to_f64() > 0.9);
        assert!(k.eval(&origin, &outer).to_f64() < 0.1);
    }

    #[test]
    fn gain_lands_in_the_paper_band() {
        let g = gain(128 * 1024, 28, &Xeon::new());
        assert!((10.0..25.0).contains(&g), "SVM gain {g:.1} outside the band around 15×");
    }
}
