//! JSON parsing (§5.5).
//!
//! The paper's baseline is SAJSON-style recursive descent: "the
//! switch-case anatomy emits a large number of instructions, and lack of
//! hardware branch prediction on the simple dpCores results in a high
//! 13.2 cycles per byte". The DPU version replaces the nested branches
//! with a **jump table**: "first loading the next byte in the input token
//! stream, and branching conditionally based on the loaded character" —
//! the whole parse table fits in 2–3 KB for JSON's ~12-state grammar.
//!
//! Both parsers here really tokenize (tests validate against hand-checked
//! documents) while recording per-byte operation counts, including the
//! *actual* branch-direction changes, which is what the dpCore's static
//! predictor mispredicts.

use dpu_isa::{OpCounts, PipelineModel};
use xeon_model::{calibration, Xeon};

/// Parser states of the table-driven tokenizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum State {
    Value = 0,
    InString = 1,
    StringEscape = 2,
    InNumber = 3,
    InLiteral = 4,
}
const N_STATES: usize = 5;

/// Token classes produced by both tokenizers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// `{`
    ObjectStart,
    /// `}`
    ObjectEnd,
    /// `[`
    ArrayStart,
    /// `]`
    ArrayEnd,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// A completed string.
    Str,
    /// A completed number.
    Num,
    /// `true`/`false`/`null`.
    Literal,
}

/// Outcome of a tokenization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseResult {
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Whether the input tokenized cleanly (balanced, no stray bytes).
    pub valid: bool,
    /// Operation counts accumulated over the run.
    pub counts: OpCounts,
    /// Bytes consumed.
    pub bytes: u64,
}

impl ParseResult {
    /// dpCore cycles per byte for this run.
    pub fn dpu_cycles_per_byte(&self) -> f64 {
        self.counts.dpcore_cycles(&PipelineModel::default()) as f64 / self.bytes as f64
    }

    /// DPU parse throughput, bytes/second, over 32 cores with per-core
    /// chunking (§5.5's chunk-padding scheme has negligible overhead).
    pub fn dpu_bytes_per_sec(&self) -> f64 {
        let per_core = 800.0e6 / self.dpu_cycles_per_byte();
        (32.0 * per_core).min(dpu_sql::plan::DPU_STREAM_BW)
    }
}

fn classify(b: u8) -> u8 {
    match b {
        b'{' | b'}' | b'[' | b']' | b':' | b',' => 0, // structural
        b'"' => 1,
        b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E' => 2,
        b't' | b'f' | b'n' | b'a'..=b'z' => 3, // literal letters
        b' ' | b'\t' | b'\n' | b'\r' => 4,
        b'\\' => 5,
        _ => 6,
    }
}

/// The DPU's table-driven tokenizer.
///
/// Per byte it performs: one input load, one class lookup (the jump
/// table, DMEM-resident), a state transition, and one loop branch — a
/// short, predictable sequence.
#[derive(Debug, Default)]
pub struct TableParser;

impl TableParser {
    /// Creates the parser.
    pub fn new() -> Self {
        TableParser
    }

    /// Size in bytes of the transition table (state × 256 input bytes →
    /// next state + action) — the paper notes the parse table fits in
    /// 2–3 KB of DMEM.
    pub fn table_bytes(&self) -> usize {
        N_STATES * 256 * 2
    }

    /// Tokenizes `input`.
    pub fn parse(&self, input: &[u8]) -> ParseResult {
        let mut tokens = Vec::new();
        let mut counts = OpCounts::default();
        let mut depth: i64 = 0;
        let mut valid = true;
        let mut state = State::Value;
        let mut prev_taken = false;

        for &b in input {
            // Per-byte cost of the jump-table path: input load, table
            // load, index math, state update, token emission and value
            // materialization (amortized) — JSON parsers retire tens of
            // instructions per byte (SAJSON measures ~48 on x86).
            counts.loads += 5;
            counts.alu += 11;
            counts.branches += 2; // loop back-edge + action dispatch
            counts.stores += 2; // token/value materialization

            let class = classify(b);
            // A second, data-dependent branch exists only at token
            // boundaries; count its mispredicts from actual direction
            // changes.
            let boundary = matches!(state, State::Value) && class != 4;
            counts.branches += 1;
            if boundary != prev_taken {
                counts.mispredicts += 1;
            }
            prev_taken = boundary;

            state = match state {
                State::Value => match class {
                    0 => {
                        match b {
                            b'{' => {
                                depth += 1;
                                tokens.push(Token::ObjectStart);
                            }
                            b'}' => {
                                depth -= 1;
                                tokens.push(Token::ObjectEnd);
                            }
                            b'[' => {
                                depth += 1;
                                tokens.push(Token::ArrayStart);
                            }
                            b']' => {
                                depth -= 1;
                                tokens.push(Token::ArrayEnd);
                            }
                            b':' => tokens.push(Token::Colon),
                            _ => tokens.push(Token::Comma),
                        }
                        State::Value
                    }
                    1 => State::InString,
                    2 => {
                        tokens.push(Token::Num);
                        State::InNumber
                    }
                    3 => {
                        tokens.push(Token::Literal);
                        State::InLiteral
                    }
                    4 => State::Value,
                    _ => {
                        valid = false;
                        State::Value
                    }
                },
                State::InString => match b {
                    b'"' => {
                        tokens.push(Token::Str);
                        State::Value
                    }
                    b'\\' => State::StringEscape,
                    _ => State::InString,
                },
                State::StringEscape => State::InString,
                State::InNumber => {
                    if classify(b) == 2 {
                        State::InNumber
                    } else {
                        // Reprocess-as-value approximation: handle the
                        // delimiter inline.
                        match b {
                            b',' => tokens.push(Token::Comma),
                            b'}' => {
                                depth -= 1;
                                tokens.push(Token::ObjectEnd);
                            }
                            b']' => {
                                depth -= 1;
                                tokens.push(Token::ArrayEnd);
                            }
                            b' ' | b'\n' | b'\t' | b'\r' => {}
                            _ => valid = false,
                        }
                        State::Value
                    }
                }
                State::InLiteral => {
                    if b.is_ascii_lowercase() {
                        State::InLiteral
                    } else {
                        match b {
                            b',' => tokens.push(Token::Comma),
                            b'}' => {
                                depth -= 1;
                                tokens.push(Token::ObjectEnd);
                            }
                            b']' => {
                                depth -= 1;
                                tokens.push(Token::ArrayEnd);
                            }
                            b' ' | b'\n' | b'\t' | b'\r' => {}
                            _ => valid = false,
                        }
                        State::Value
                    }
                }
            };
            if depth < 0 {
                valid = false;
            }
        }
        valid &= depth == 0 && state == State::Value;
        ParseResult { tokens, valid, counts, bytes: input.len() as u64 }
    }
}

/// The SAJSON-style recursive-descent (branchy) tokenizer: same output,
/// but every byte runs through a switch ladder whose comparisons are
/// data-dependent branches.
#[derive(Debug, Default)]
pub struct BranchyParser;

impl BranchyParser {
    /// Creates the parser.
    pub fn new() -> Self {
        BranchyParser
    }

    /// Tokenizes `input` with switch-ladder accounting.
    pub fn parse(&self, input: &[u8]) -> ParseResult {
        // Same functional result, different cost structure.
        let mut result = TableParser::new().parse(input);
        let mut counts = OpCounts::default();
        let mut prev_class = 255u8;
        for &b in input {
            let class = classify(b);
            // The switch ladder: several compare-and-branch steps to
            // reach the handler, plus the same materialization work.
            let ladder = 3 + class.min(5) as u64;
            counts.alu += 11 + ladder;
            counts.loads += 5;
            counts.stores += 2;
            counts.branches += ladder;
            // Static backward-taken prediction: ladder branches
            // mispredict whenever the byte class changes (the common
            // case in mixed text/number records).
            if class != prev_class {
                counts.mispredicts += (ladder + 2) / 2;
            }
            prev_class = class;
        }
        counts.mispredicts += 0;
        result.counts = counts;
        result
    }
}

/// Splits a JSON byte stream into `n` per-core chunk ranges aligned to
/// record boundaries (§5.5): "to further avoid synchronization that
/// would be required if a JSON record straddled the chunk boundary
/// between two dpCores, each dpCore allocates and reads an extra chunk
/// [1 KB of padding]. During parsing, the extra bytes are parsed as the
/// last bytes of the dpCore processing the previous chunk and ignored by
/// the dpCore which encounters them in its first chunk." The returned
/// ranges realize exactly that hand-off: chunk `i` ends where a record
/// ends (a depth-1 comma or the closing bracket), and chunk `i+1` starts
/// there.
///
/// # Panics
///
/// Panics if `n_chunks` is zero.
pub fn split_chunks(input: &[u8], n_chunks: usize) -> Vec<(usize, usize)> {
    assert!(n_chunks > 0, "need at least one chunk");
    // Pre-scan depth/string state once (what the offline chunker does).
    let mut boundaries = vec![0usize];
    let target = input.len().div_ceil(n_chunks);
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escape = false;
    let mut next_split = target;
    for (i, &b) in input.iter().enumerate() {
        if in_string {
            if escape {
                escape = false;
            } else if b == b'\\' {
                escape = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            b',' if depth == 1 && i >= next_split => {
                // Split after the record-separating comma.
                boundaries.push(i + 1);
                next_split = (boundaries.len()) * target;
                if boundaries.len() == n_chunks {
                    break;
                }
            }
            _ => {}
        }
    }
    boundaries.push(input.len());
    boundaries.windows(2).map(|w| (w[0], w[1])).filter(|(a, b)| a < b).collect()
}

/// Generates `n` TPC-H lineitem-shaped JSON records (the paper's ~1 GB
/// benchmark corpus in miniature): integers, strings and dates.
pub fn generate_records(n: usize, seed: u64) -> Vec<u8> {
    use dpu_sim::SplitMix64;
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::new();
    out.push(b'[');
    for i in 0..n {
        if i > 0 {
            out.push(b',');
        }
        let qty = rng.next_below(50) + 1;
        let price = rng.next_below(100_000) + 100;
        let day = rng.next_below(2405);
        let flag = ["A", "N", "R"][rng.next_below(3) as usize];
        let comment_len = rng.next_below(20) + 5;
        let comment: String =
            (0..comment_len).map(|_| (b'a' + rng.next_below(26) as u8) as char).collect();
        out.extend_from_slice(
            format!(
                "{{\"l_orderkey\":{i},\"l_quantity\":{qty},\"l_extendedprice\":{price},\
                 \"l_shipdate\":\"1992-{:02}-{:02}\",\"l_returnflag\":\"{flag}\",\
                 \"l_comment\":\"{comment}\",\"day\":{day}}}",
                day % 12 + 1,
                day % 28 + 1
            )
            .as_bytes(),
        );
    }
    out.push(b']');
    out
}

/// The Figure 14 JSON gain: simulated DPU table-parser throughput against
/// the paper's measured SAJSON 5.2 GB/s baseline.
pub fn gain(corpus: &[u8], xeon: &Xeon) -> f64 {
    let dpu = TableParser::new().parse(corpus).dpu_bytes_per_sec();
    (dpu / 6.0) / (calibration::SAJSON_BW / xeon.tdp_watts())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_document() {
        let r = TableParser::new().parse(br#"{"a":1,"b":[true,"x"]}"#);
        assert!(r.valid, "document should be valid");
        assert_eq!(
            r.tokens,
            vec![
                Token::ObjectStart,
                Token::Str,
                Token::Colon,
                Token::Num,
                Token::Comma,
                Token::Str,
                Token::Colon,
                Token::ArrayStart,
                Token::Literal,
                Token::Comma,
                Token::Str,
                Token::ArrayEnd,
                Token::ObjectEnd,
            ]
        );
    }

    #[test]
    fn escapes_inside_strings() {
        let r = TableParser::new().parse(br#"{"k":"a\"b"}"#);
        assert!(r.valid);
        assert_eq!(
            r.tokens,
            vec![Token::ObjectStart, Token::Str, Token::Colon, Token::Str, Token::ObjectEnd]
        );
    }

    #[test]
    fn detects_imbalance() {
        assert!(!TableParser::new().parse(b"{\"a\":1").valid);
        assert!(!TableParser::new().parse(b"}").valid);
        assert!(!TableParser::new().parse(b"{\"a\":@}").valid);
    }

    #[test]
    fn both_parsers_agree_functionally() {
        let corpus = generate_records(200, 7);
        let a = TableParser::new().parse(&corpus);
        let b = BranchyParser::new().parse(&corpus);
        assert!(a.valid);
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.bytes, corpus.len() as u64);
    }

    #[test]
    fn generated_records_are_valid_json_shape() {
        let corpus = generate_records(50, 1);
        let r = TableParser::new().parse(&corpus);
        assert!(r.valid);
        // 50 records × 7 fields: at least 50×14 tokens.
        assert!(r.tokens.len() > 50 * 14);
        // Deterministic.
        assert_eq!(corpus, generate_records(50, 1));
        assert_ne!(corpus, generate_records(50, 2));
    }

    #[test]
    fn branchy_parser_pays_for_mispredicts_on_dpu() {
        let corpus = generate_records(500, 3);
        let table = TableParser::new().parse(&corpus);
        let branchy = BranchyParser::new().parse(&corpus);
        let t_cpb = table.dpu_cycles_per_byte();
        let b_cpb = branchy.dpu_cycles_per_byte();
        assert!(b_cpb > 1.6 * t_cpb, "branchy {b_cpb:.1} c/B should dwarf table {t_cpb:.1} c/B");
        // Table parser ≈15 c/B (1.73 GB/s over 32 cores); the branchy
        // parser's ladder + mispredicts more than double that.
        assert!((11.0..19.0).contains(&t_cpb), "table {t_cpb:.1} c/B");
        assert!((24.0..48.0).contains(&b_cpb), "branchy {b_cpb:.1} c/B");
    }

    #[test]
    fn dpu_table_parser_reaches_paper_throughput() {
        let corpus = generate_records(500, 3);
        let bw = TableParser::new().parse(&corpus).dpu_bytes_per_sec();
        // Paper: 1.73 GB/s over 32 dpCores.
        assert!(
            (1.2e9..2.6e9).contains(&bw),
            "DPU JSON throughput {bw:.3e} outside the band around 1.73 GB/s"
        );
    }

    #[test]
    fn gain_lands_near_8x() {
        let corpus = generate_records(500, 3);
        let g = gain(&corpus, &Xeon::new());
        assert!((6.0..11.0).contains(&g), "JSON gain {g:.2}");
    }

    #[test]
    fn chunked_parallel_parse_equals_serial() {
        let corpus = generate_records(300, 12);
        let serial = TableParser::new().parse(&corpus);
        for n_chunks in [1usize, 2, 7, 32] {
            let chunks = split_chunks(&corpus, n_chunks);
            // Ranges tile the input exactly.
            assert_eq!(chunks[0].0, 0);
            assert_eq!(chunks.last().unwrap().1, corpus.len());
            for w in chunks.windows(2) {
                assert_eq!(w[0].1, w[1].0, "chunks must abut");
            }
            // Concatenated per-chunk token streams equal the serial one.
            let mut tokens = Vec::new();
            for &(a, b) in &chunks {
                tokens.extend(TableParser::new().parse(&corpus[a..b]).tokens);
            }
            assert_eq!(tokens, serial.tokens, "n_chunks={n_chunks}");
        }
    }

    #[test]
    fn chunk_boundaries_never_split_a_record() {
        let corpus = generate_records(100, 77);
        for &(start, _) in split_chunks(&corpus, 8).iter().skip(1) {
            // Every non-initial chunk starts right after a record comma.
            assert_eq!(corpus[start - 1], b',');
            assert_eq!(corpus[start], b'{');
        }
    }

    #[test]
    fn strings_with_braces_do_not_confuse_the_chunker() {
        let tricky = br#"[{"a":"}{,\"x"},{"b":1},{"c":"],["}]"#;
        let chunks = split_chunks(tricky, 3);
        let serial = TableParser::new().parse(tricky);
        let mut tokens = Vec::new();
        for &(a, b) in &chunks {
            tokens.extend(TableParser::new().parse(&tricky[a..b]).tokens);
        }
        assert_eq!(tokens, serial.tokens);
    }

    #[test]
    fn parse_table_fits_dmem() {
        assert!(TableParser::new().table_bytes() <= 3 * 1024);
    }
}
