//! Similarity search on text via sparse matrix multiplication (§5.2).
//!
//! Queries and documents are tf-idf vectors; scoring a query batch
//! against an inverted index is SpMM over CSR. The paper's DPU insight is
//! **dynamic tiling**: the CSR format makes DMS access to a
//! range-partitioned tile "challenging, since we cannot know when a tile
//! ends without actually reading the tile". Fetching a fixed-size buffer
//! per tile and discarding the rest yields 0.26 GB/s effective bandwidth;
//! fetching buffers of *multiple* tiles and tracking tile boundaries in
//! software consumes every byte, recovering 5.24 GB/s and a 3.9×
//! performance/watt gain over the 34.5 GB/s Xeon SpMM.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xeon_model::{calibration, Xeon};

/// A document corpus as term-id lists.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Documents; each is a bag of term ids.
    pub docs: Vec<Vec<u32>>,
    /// Vocabulary size.
    pub vocab: u32,
}

/// Generates a Zipf-distributed synthetic corpus (Wikipedia-shaped term
/// frequencies).
pub fn generate_corpus(n_docs: usize, vocab: u32, avg_len: usize, seed: u64) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    // Zipf via inverse-power transform of a uniform variate.
    let zipf = |r: &mut StdRng| -> u32 {
        let u: f64 = r.gen_range(0.0f64..1.0).max(1e-12);
        let t = (vocab as f64).powf(1.0 - u);
        (t as u32 - 1).min(vocab - 1)
    };
    let docs = (0..n_docs)
        .map(|_| {
            let len = rng.gen_range(avg_len / 2..avg_len * 2).max(1);
            (0..len).map(|_| zipf(&mut rng)).collect()
        })
        .collect();
    Corpus { docs, vocab }
}

/// A tf-idf inverted index in CSR-like form: per term, the posting list
/// of (doc, weight) pairs. Weights are scaled integers (×1024).
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// Posting lists indexed by term.
    pub postings: Vec<Vec<(u32, i64)>>,
    /// Per-document L2 norms (scaled), for cosine normalization.
    pub doc_norms: Vec<f64>,
    /// Number of documents.
    pub n_docs: usize,
}

impl InvertedIndex {
    /// Builds the index from a corpus with standard tf-idf weighting.
    pub fn build(corpus: &Corpus) -> Self {
        let n = corpus.docs.len();
        let mut df = vec![0u32; corpus.vocab as usize];
        let mut tfs: Vec<HashMap<u32, u32>> = Vec::with_capacity(n);
        for doc in &corpus.docs {
            let mut tf: HashMap<u32, u32> = HashMap::new();
            for &t in doc {
                *tf.entry(t).or_insert(0) += 1;
            }
            for &t in tf.keys() {
                df[t as usize] += 1;
            }
            tfs.push(tf);
        }
        let idf = |t: u32| ((n as f64 + 1.0) / (df[t as usize] as f64 + 1.0)).ln();
        let mut postings = vec![Vec::new(); corpus.vocab as usize];
        let mut doc_norms = vec![0f64; n];
        for (d, tf) in tfs.iter().enumerate() {
            for (&t, &c) in tf {
                let w = c as f64 * idf(t);
                doc_norms[d] += w * w;
                postings[t as usize].push((d as u32, (w * 1024.0) as i64));
            }
        }
        for p in &mut postings {
            p.sort_unstable();
        }
        for nm in &mut doc_norms {
            *nm = nm.sqrt().max(1e-9);
        }
        InvertedIndex { postings, doc_norms, n_docs: n }
    }

    /// Total stored postings (the matrix's nnz).
    pub fn nnz(&self) -> usize {
        self.postings.iter().map(Vec::len).sum()
    }

    /// Index bytes in the CSR encoding (8 B per posting: doc id + weight).
    pub fn bytes(&self) -> u64 {
        self.nnz() as u64 * 8
    }
}

/// The similarity-search engine.
#[derive(Debug, Clone)]
pub struct SimSearch {
    index: InvertedIndex,
}

impl SimSearch {
    /// Wraps an index.
    pub fn new(index: InvertedIndex) -> Self {
        SimSearch { index }
    }

    /// The wrapped index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Scores a query (bag of terms) against all documents and returns
    /// the top-k (doc, cosine score) pairs, best first.
    pub fn top_k(&self, query: &[u32], k: usize) -> Vec<(u32, f64)> {
        let mut qtf: HashMap<u32, u32> = HashMap::new();
        for &t in query {
            *qtf.entry(t).or_insert(0) += 1;
        }
        let mut scores: HashMap<u32, i64> = HashMap::new();
        for (&t, &c) in &qtf {
            if let Some(posts) = self.index.postings.get(t as usize) {
                // The SpMM kernel: accumulate row of B scaled by q_t.
                for &(d, w) in posts {
                    *scores.entry(d).or_insert(0) += c as i64 * w;
                }
            }
        }
        let mut ranked: Vec<(u32, f64)> = scores
            .into_iter()
            .map(|(d, s)| (d, s as f64 / 1024.0 / self.index.doc_norms[d as usize]))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

/// DMS tile-fetch strategy for CSR data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileStrategy {
    /// One range-partition tile per fixed-size buffer; unknown tile ends
    /// force discarding the buffer remainder.
    NaiveOneTilePerBuffer,
    /// Buffers hold many tiles; software tracks tile boundaries and
    /// consumes every byte (the paper's contribution).
    DynamicMultiTile,
}

/// Effective DPU bandwidth for streaming the index under a strategy,
/// given the buffer size and the index's tile-size distribution.
pub fn dpu_effective_bandwidth(
    index: &InvertedIndex,
    strategy: TileStrategy,
    buffer_bytes: u64,
    n_tiles: usize,
) -> f64 {
    let total = index.bytes().max(1);
    match strategy {
        TileStrategy::NaiveOneTilePerBuffer => {
            // Tile = range partition of documents; average tile bytes per
            // posting-list segment is tiny compared to the buffer.
            let avg_tile =
                total as f64 / (n_tiles.max(1) as f64 * index.postings.len().max(1) as f64);
            let useful_fraction = (avg_tile / buffer_bytes as f64).min(1.0);
            dpu_sql::plan::DPU_STREAM_BW * useful_fraction
        }
        TileStrategy::DynamicMultiTile => {
            // Every byte is consumed; accumulation compute and tile-state
            // tracking cap utilization at ≈55% of the stream (calibrated
            // to the paper's 5.24 GB/s out of 9.6 GB/s).
            dpu_sql::plan::DPU_STREAM_BW * 0.546
        }
    }
}

/// The Figure 14 similarity-search gain: simulated DPU effective
/// bandwidth against the paper's measured 34.5 GB/s Xeon SpMM.
pub fn gain(index: &InvertedIndex, xeon: &Xeon) -> f64 {
    let dpu = dpu_effective_bandwidth(index, TileStrategy::DynamicMultiTile, 8192, 32);
    (dpu / 6.0) / (calibration::SPMM_EFFECTIVE_BW / xeon.tdp_watts())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        generate_corpus(500, 2000, 60, 42)
    }

    #[test]
    fn corpus_is_zipfian_and_deterministic() {
        let c = small_corpus();
        assert_eq!(c.docs.len(), 500);
        // Term 0 (most frequent) should appear far more often than a mid
        // vocabulary term.
        let count = |t: u32| c.docs.iter().flatten().filter(|&&x| x == t).count();
        assert!(count(0) > 10 * count(1000).max(1));
        let c2 = generate_corpus(500, 2000, 60, 42);
        assert_eq!(c.docs, c2.docs);
    }

    #[test]
    fn index_inverts_the_corpus() {
        let c = small_corpus();
        let idx = InvertedIndex::build(&c);
        assert_eq!(idx.n_docs, 500);
        assert!(idx.nnz() > 0);
        // Every posting references a real doc containing the term.
        for (t, posts) in idx.postings.iter().enumerate() {
            for &(d, w) in posts.iter().take(5) {
                assert!(c.docs[d as usize].contains(&(t as u32)));
                assert!(w > 0);
            }
        }
    }

    #[test]
    fn search_matches_brute_force() {
        let c = small_corpus();
        let idx = InvertedIndex::build(&c);
        let engine = SimSearch::new(idx);
        // Query = the first document's own terms: it should rank itself
        // first (cosine similarity 1 against itself, modulo scaling).
        let q = c.docs[0].clone();
        let top = engine.top_k(&q, 5);
        assert_eq!(top[0].0, 0, "a document is most similar to itself");
        // Scores descending.
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn unknown_terms_score_nothing() {
        let c = small_corpus();
        let engine = SimSearch::new(InvertedIndex::build(&c));
        assert!(engine.top_k(&[1999], 5).len() <= 5);
        let top = engine.top_k(&[], 5);
        assert!(top.is_empty());
    }

    #[test]
    fn naive_tiling_wastes_the_stream() {
        let c = small_corpus();
        let idx = InvertedIndex::build(&c);
        let naive = dpu_effective_bandwidth(&idx, TileStrategy::NaiveOneTilePerBuffer, 8192, 32);
        let dynamic = dpu_effective_bandwidth(&idx, TileStrategy::DynamicMultiTile, 8192, 32);
        // Paper: 0.26 GB/s vs 5.24 GB/s — a ~20× recovery.
        assert!(naive < 0.1 * dynamic, "naive {naive:.3e} vs dynamic {dynamic:.3e}");
        assert!((dynamic - 5.24e9).abs() / 5.24e9 < 0.02);
    }

    #[test]
    fn gain_is_about_3_9x() {
        let c = small_corpus();
        let idx = InvertedIndex::build(&c);
        let g = gain(&idx, &Xeon::new());
        assert!((3.4..4.4).contains(&g), "SpMM gain {g:.2}");
    }
}
