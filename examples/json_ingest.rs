//! JSON ingestion: table-driven parsing vs recursive descent (§5.5).
//!
//! Run with: `cargo run --release --example json_ingest`

use dpu_repro::apps::json::{self, generate_records, BranchyParser, TableParser};
use dpu_repro::xeon::Xeon;

fn main() {
    let corpus = generate_records(5000, 99);
    println!("corpus: {} bytes of lineitem-shaped JSON records", corpus.len());

    let table = TableParser::new().parse(&corpus);
    let branchy = BranchyParser::new().parse(&corpus);
    assert!(table.valid);
    assert_eq!(table.tokens, branchy.tokens);
    println!("tokens: {}", table.tokens.len());

    println!("\ndpCore cost (static branch prediction, dual issue):");
    println!(
        "  branchy (SAJSON-style): {:.1} cycles/byte → {:.2} GB/s on 32 cores",
        branchy.dpu_cycles_per_byte(),
        branchy.dpu_bytes_per_sec() / 1e9
    );
    println!(
        "  table-driven:           {:.1} cycles/byte → {:.2} GB/s on 32 cores",
        table.dpu_cycles_per_byte(),
        table.dpu_bytes_per_sec() / 1e9
    );
    println!(
        "\nperf/watt gain vs SAJSON at 5.2 GB/s: {:.1}× (paper: 8×)",
        json::gain(&corpus, &Xeon::new())
    );
}
