//! SQL analytics: TPC-H on the DPU cost model.
//!
//! Generates a miniature TPC-H database, runs the eight-query suite
//! (results computed for real), and prints each query's answer size and
//! performance/watt gain at SF≈100 cardinalities.
//!
//! Run with: `cargo run --release --example sql_analytics`

use dpu_repro::sql::tpch;
use dpu_repro::xeon::Xeon;

fn main() {
    let xeon = Xeon::new();
    let db = tpch::generate(3000, 7);
    println!(
        "TPC-H miniature: {} lineitem rows, {} orders, {} customers\n",
        db.lineitem.rows(),
        db.orders.rows(),
        db.customer.rows()
    );

    let scale = 30_000;
    let (q1, c1) = tpch::q1(&db, &xeon, scale);
    println!("Q1  pricing summary: {} groups, gain {:.1}×", q1.rows(), c1.gain(&xeon));
    let (q3, c3) = tpch::q3(&db, &xeon, scale);
    println!("Q3  shipping priority: top {} orders, gain {:.1}×", q3.rows(), c3.gain(&xeon));
    let (rev, c6) = tpch::q6(&db, &xeon, scale);
    println!("Q6  forecast revenue: {} (cents·pct), gain {:.1}×", rev, c6.gain(&xeon));
    let (q18, c18) = tpch::q18(&db, &xeon, scale);
    println!("Q18 large orders: {} rows, gain {:.1}×", q18.rows(), c18.gain(&xeon));

    let (gains, geomean) = tpch::run_all(&db, &xeon, scale);
    println!("\nAll eight queries:");
    for (name, g) in gains {
        println!("  {name:>4}: {g:.1}×");
    }
    println!("geometric mean: {geomean:.1}× (paper Figure 16: 15×)");
}
