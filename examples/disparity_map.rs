//! Stereo disparity on a synthetic pair (§5.6).
//!
//! Run with: `cargo run --release --example disparity_map`

use dpu_repro::apps::disparity::{self, disparity_map, synthetic_pair, Decomposition};
use dpu_repro::xeon::Xeon;

fn main() {
    let (w, h, true_shift) = (128usize, 64usize, 7usize);
    let (left, right) = synthetic_pair(w, h, true_shift, 5);
    let map = disparity_map(&left, &right, 16, 2);
    let correct = map.iter().filter(|&&d| d as usize == true_shift).count();
    println!(
        "{w}×{h} pair with true shift {true_shift}: {correct}/{} pixels recovered ({:.1}%)",
        map.len(),
        100.0 * correct as f64 / map.len() as f64
    );

    println!("\nDPU decomposition (640×480, 32 shifts):");
    for (name, d) in [
        ("fine-grained", Decomposition::FineGrained),
        ("coarse-grained", Decomposition::CoarseGrained),
    ] {
        println!("  {name:<14} {:.2} ms", 1e3 * disparity::dpu_seconds(640, 480, 32, d));
    }
    println!(
        "perf/watt gain vs OpenMP baseline: {:.1}× (paper: 8.6×)",
        disparity::gain(640, 480, 32, &Xeon::new())
    );
}
