//! Writing a dpCore program by hand: assemble → run → inspect.
//!
//! Demonstrates the ISA toolchain: a histogram kernel in dpCore assembly
//! using DMEM-resident buckets (single-cycle access, the group-by
//! argument of §5.3), executed on the interpreter with cycle accounting
//! from the dual-issue pipeline model.
//!
//! Run with: `cargo run --release --example dpcore_assembly`

use dpu_repro::isa::asm::assemble;
use dpu_repro::isa::interp::{Cpu, Trap};

fn main() {
    // 256 buckets of 8 B at DMEM 0x6000 (past the 16 KB input); 4096 input words at DMEM 0.
    // For each value: bucket = CRC32(v) & 0xFF (the hardware hash).
    let source = "
            # r2 = input ptr, r3 = rows, r10 = bucket base
            addi r2, r0, 0
            li   r3, 4096
            li   r10, 0x6000
    loop:   lw   r5, 0(r2)          # value
            crc32 r6, r0, r5        # hardware hashcode
            andi r6, r6, 0xFF       # bucket index
            sll  r6, r6, 3          # ×8 bytes
            add  r6, r6, r10
            ld   r7, 0(r6)          # single-cycle DMEM bucket update
            addi r7, r7, 1
            sd   r7, 0(r6)
            addi r2, r2, 4
            addi r3, r3, -1
            bne  r3, r0, loop
            halt";
    let prog = assemble(source).expect("assembles");
    println!("assembled {} instructions", prog.len());

    let mut cpu = Cpu::new(32 * 1024);
    // Load 4096 input words.
    for i in 0..4096u32 {
        let v = i.wrapping_mul(0x9E37_79B9);
        cpu.dmem_mut()[i as usize * 4..i as usize * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    let run = cpu.run(&prog, 10_000_000).expect("runs");
    assert_eq!(run.trap, Trap::Halt);

    // Inspect the histogram.
    let mut total = 0u64;
    let mut max_bucket = (0u64, 0usize);
    for b in 0..256usize {
        let off = 0x6000 + b * 8;
        let count = u64::from_le_bytes(cpu.dmem()[off..off + 8].try_into().unwrap());
        total += count;
        if count > max_bucket.0 {
            max_bucket = (count, b);
        }
    }
    println!(
        "histogram: {total} values across 256 buckets; heaviest bucket {} holds {}",
        max_bucket.1, max_bucket.0
    );
    assert_eq!(total, 4096);

    println!(
        "executed {} instructions in {} cycles (IPC {:.2}) — {:.1} cycles/value",
        run.instructions,
        run.cycles,
        run.ipc(),
        run.cycles as f64 / 4096.0
    );
    println!(
        "pipeline mix: {} loads, {} stores, {} branches ({} mispredicted), {} CRC32 ops",
        cpu.counts().loads,
        cpu.counts().stores,
        cpu.counts().branches,
        cpu.counts().mispredicts,
        cpu.counts().special,
    );
}
