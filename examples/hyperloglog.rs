//! HyperLogLog: distinct counting with the DPU's CRC32 engine.
//!
//! Sketches a stream per "core", merges the 32 sketches (as the final
//! ATE merge phase does), and compares hash/rank variants (§5.4).
//!
//! Run with: `cargo run --release --example hyperloglog`

use dpu_repro::apps::hll::{self, HyperLogLog, RankMethod};
use dpu_repro::isa::hash::HashKind;
use dpu_repro::xeon::Xeon;

fn main() {
    let true_distinct = 500_000u64;
    let cores = 32;

    // Each core sketches its shard; duplicates across shards are fine.
    let mut sketches: Vec<HyperLogLog> =
        (0..cores).map(|_| HyperLogLog::new(14, HashKind::Crc32)).collect();
    for i in 0..true_distinct {
        let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        sketches[(i % cores as u64) as usize].insert(k);
        // Some duplicates land on other cores.
        if i % 3 == 0 {
            sketches[((i + 1) % cores as u64) as usize].insert(k);
        }
    }
    let mut merged = sketches.remove(0);
    for s in &sketches {
        merged.merge(s);
    }
    let est = merged.estimate();
    println!(
        "true distinct = {true_distinct}, estimated = {est:.0} ({:+.2}% error)",
        100.0 * (est - true_distinct as f64) / true_distinct as f64
    );

    let xeon = Xeon::new();
    println!("\nhash/rank design space (items/s on the DPU):");
    for hash in [HashKind::Crc32, HashKind::Murmur64] {
        for rank in [RankMethod::TrailingZeros, RankMethod::LeadingZeros] {
            println!("  {hash:?} + {rank:?}: {:.2e} items/s", hll::dpu_items_per_sec(hash, rank));
        }
    }
    println!(
        "\nperf/watt gain vs Xeon: CRC32 {:.1}× (paper ≈9×), Murmur64 {:.1}×",
        hll::gain(HashKind::Crc32, &xeon),
        hll::gain(HashKind::Murmur64, &xeon)
    );
}
