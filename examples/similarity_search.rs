//! Similarity search: tf-idf top-k over a synthetic corpus (§5.2).
//!
//! Run with: `cargo run --release --example similarity_search`

use dpu_repro::apps::simsearch::{self, generate_corpus, InvertedIndex, SimSearch, TileStrategy};
use dpu_repro::xeon::Xeon;

fn main() {
    let corpus = generate_corpus(5000, 20_000, 100, 2026);
    let index = InvertedIndex::build(&corpus);
    println!(
        "corpus: {} docs, vocab {}, index nnz = {} ({:.1} MB CSR)",
        corpus.docs.len(),
        corpus.vocab,
        index.nnz(),
        index.bytes() as f64 / 1e6
    );

    let engine = SimSearch::new(index);
    // Query with one document's own terms: it must rank first.
    let query = corpus.docs[123].clone();
    println!("\ntop-5 for a known document's terms:");
    for (doc, score) in engine.top_k(&query, 5) {
        println!("  doc {doc:>5}  cosine {score:.4}");
    }

    let xeon = Xeon::new();
    let naive = simsearch::dpu_effective_bandwidth(
        engine.index(),
        TileStrategy::NaiveOneTilePerBuffer,
        8192,
        32,
    );
    let dynamic = simsearch::dpu_effective_bandwidth(
        engine.index(),
        TileStrategy::DynamicMultiTile,
        8192,
        32,
    );
    println!(
        "\nDMS tile strategies: naive {:.2} GB/s → dynamic {:.2} GB/s (paper: 0.26 → 5.24)",
        naive / 1e9,
        dynamic / 1e9
    );
    println!(
        "perf/watt gain vs 34.5 GB/s Xeon SpMM: {:.1}× (paper: 3.9×)",
        simsearch::gain(engine.index(), &xeon)
    );
}
