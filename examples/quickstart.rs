//! Quickstart: stream data through the DMS into DMEM and filter it.
//!
//! Builds the fabricated 40 nm DPU, loads a column into simulated DRAM,
//! runs a double-buffered streaming filter on every dpCore, and reports
//! the achieved DMS bandwidth — the canonical DPU programming pattern
//! (paper §2.1 Listing 1 + §5.3 Filter).
//!
//! Run with: `cargo run --release --example quickstart`

use dpu_repro::soc::{CoreProgram, Dpu, DpuConfig, StreamKernel, StreamSpec};

fn main() {
    let mut dpu = Dpu::new(DpuConfig::nm40());
    let n_cores = dpu.n_cores();
    println!(
        "DPU: {} dpCores in {} macros, {:.1} GB/s peak DRAM, {:.1} W provisioned",
        n_cores,
        dpu.config().n_macros(),
        dpu.config().peak_dram_bytes_per_sec() / 1e9,
        dpu.config().provisioned_watts,
    );

    // One million 4-byte values, region per core.
    let rows_per_core = 32 * 1024u64;
    let region = rows_per_core * 4;
    for core in 0..n_cores as u64 {
        for r in 0..rows_per_core {
            dpu.phys_mut().write_u32(core * region + r * 4, (core * 1000 + r % 100) as u32);
        }
    }

    // Every core: stream its region through a 2 KB double buffer and
    // count values < 50 (a FILT-style predicate at 1.65 cycles/tuple).
    let mut programs: Vec<Box<dyn CoreProgram>> = Vec::new();
    for core in 0..n_cores as u64 {
        let spec = StreamSpec {
            cols: vec![core * region],
            rows_total: rows_per_core,
            rows_per_tile: 512,
            col_width: 4,
            dmem_base: 0,
            write_back: None,
            buffers: 2,
        };
        programs.push(Box::new(StreamKernel::new(spec, move |ctx, tile| {
            let mut hits = 0u64;
            for r in 0..tile.rows {
                let v = ctx.dmem.read_u32(tile.col_addrs[0] + r * 4);
                if v % 1000 < 50 {
                    hits += 1;
                }
            }
            // Report per-core counts into DRAM (tile 0 resets).
            let slot = (1 << 22) + ctx.core as u64 * 8;
            let prev = if tile.index == 0 { 0 } else { ctx.phys.read_u64(slot) };
            ctx.phys.write_u64(slot, prev + hits);
            (tile.rows as f64 * 1.65) as u64
        })));
    }

    let report = dpu.run(&mut programs).expect("simulation runs");
    let total_hits: u64 = (0..n_cores as u64).map(|c| dpu.phys().read_u64((1 << 22) + c * 8)).sum();
    println!(
        "filtered {} rows, {} matched; DMS bandwidth {:.2} GB/s in {} cycles",
        n_cores as u64 * rows_per_core,
        total_hits,
        report.dms_gbytes_per_sec(dpu.config().clock),
        report.finish.cycles(),
    );
    let expect_per_core = (0..rows_per_core).filter(|r| r % 100 < 50).count() as u64;
    assert_eq!(total_hits, n_cores as u64 * expect_per_core, "50 of every full 100");
}
