//! The rack-scale argument of §1–§2: why a 6 W processor.
//!
//! Run with: `cargo run --release --example rack_provisioning`

use dpu_repro::soc::rack::{Rack, PCIE_STRAWMAN_WATTS};
use dpu_repro::soc::DpuConfig;

fn main() {
    let rack = Rack::prototype();
    println!("The paper's 42U prototype rack:");
    println!("  nodes:               {}", rack.n_nodes);
    println!("  DRAM capacity:       {:.1} TB", rack.capacity_bytes() as f64 / 1e12);
    println!("  aggregate bandwidth: {:.1} TB/s", rack.aggregate_bandwidth() / 1e12);
    println!("  full-table scan:     {:.2} s", rack.full_scan_seconds());
    println!("  memory power:        {:.1} kW", rack.memory_watts() / 1e3);
    println!(
        "  total rack power:    {:.1} kW of {:.0} kW budget",
        rack.total_watts() / 1e3,
        rack.rack_watts / 1e3
    );
    println!(
        "  processor slot:      {:.2} W → the 6 W DPU {}",
        rack.processor_budget_watts(),
        if rack.node_fits_budget() { "fits" } else { "does NOT fit" }
    );
    println!(
        "  channel density:     {:.1}× a commodity Xeon rack",
        rack.channel_density_advantage()
    );

    // The strawman the paper rules out.
    let mut strawman = Rack::prototype();
    strawman.network_watts_per_node = PCIE_STRAWMAN_WATTS;
    println!(
        "\nWith a 10 W PCIe NIC per node the slot shrinks to {:.2} W — \"leaving\na power budget of < 7 W for the processor\" (§2); a {} W Xeon is out\nby 20×.",
        strawman.processor_budget_watts(),
        145
    );

    // And the shrink.
    let mut shrunk = Rack::prototype();
    shrunk.node = DpuConfig::nm16();
    shrunk.n_nodes = 480;
    println!(
        "\n16 nm refresh (480 × 160-core nodes): {:.1} TB/s at {:.1} kW total.",
        shrunk.aggregate_bandwidth() / 1e12,
        shrunk.total_watts() / 1e3
    );
}
