//! Rack-scale TPC-H: shard the database across 8 simulated DPU nodes,
//! run the full 8-query suite scatter/gather, and serve it to a
//! closed-loop client population.
//!
//! Demonstrates the `cluster` crate end to end: hash sharding (orders
//! and lineitem co-located by order key, dimensions replicated), the
//! shared-Infiniband fabric model, per-query distributed plans whose
//! results are bit-identical to single-node execution, and the serving
//! front-end's QPS / latency / performance-per-watt report against a
//! 42U Xeon rack.
//!
//! Run with: `cargo run --release --example rack_tpch`

use dpu_repro::cluster::{serve, Cluster, ClusterConfig, ServeConfig, ShardPolicy, Template};
use dpu_repro::sql::tpch;
use dpu_repro::xeon::XeonRack;

fn main() {
    let nodes = 8;
    let db = tpch::generate(2000, 2026);
    println!(
        "Sharding TPC-H ({} orders, {} lineitem rows) across {nodes} DPU nodes…",
        db.orders.rows(),
        db.lineitem.rows()
    );

    let policy = ShardPolicy::hash(nodes);
    let mut cluster = Cluster::new(db, &policy, ClusterConfig::prototype_slice(nodes, 30_000));
    println!(
        "Load: {:.3} ms (fact scatter + dimension broadcast over the fabric)\n",
        cluster.load_seconds() * 1e3
    );

    let mut templates = Vec::new();
    for r in cluster.run_all() {
        assert!(r.matches_single(), "distributed result must equal single-node");
        println!(
            "{:>4}: {:7.2} ms  (local {:6.2} + fabric {:5.3} + merge {:5.3}), exact ✓",
            r.id.name(),
            r.cost.total_seconds() * 1e3,
            r.cost.local_seconds * 1e3,
            r.cost.fabric_seconds * 1e3,
            r.cost.merge_seconds * 1e3,
        );
        templates.push(Template {
            name: r.id.name(),
            cost: r.cost.clone(),
            xeon_seconds: r.single_cost.xeon.seconds,
        });
    }

    let rack = XeonRack::rack_42u();
    let report = serve(&templates, cluster.watts(), &rack, &ServeConfig::default());
    println!(
        "\nServing: {:.1} QPS at {:.0} W (p50 {:.0} ms, p99 {:.0} ms, mean batch {:.1})",
        report.qps,
        report.cluster_watts,
        report.p50 * 1e3,
        report.p99 * 1e3,
        report.mean_batch
    );
    println!(
        "Xeon 42U rack: {:.1} QPS at {:.0} W → rack performance/watt gain {:.1}×",
        report.xeon_qps, report.xeon_watts, report.perf_per_watt_gain
    );
}
