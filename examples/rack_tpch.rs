//! Rack-scale TPC-H: shard the database across 8 simulated DPU nodes
//! with 2-way replication, run the full 8-query suite scatter/gather,
//! crash a node mid-run to show failover, rebuild it from surviving
//! replicas, and serve the suite to a closed-loop client population.
//!
//! Demonstrates the `cluster` crate end to end: hash sharding (orders
//! and lineitem co-located by order key, dimensions replicated),
//! chained-declustering replica placement, the shared-Infiniband fabric
//! model, deterministic fault injection with failover routing whose
//! results stay bit-identical to single-node execution, the recovery
//! model, the serving front-end's QPS / latency / performance-per-watt
//! report against a 42U Xeon rack, the concurrent pipeline with
//! SLO-adaptive batching over the shared fabric, and speculative
//! re-execution racing a straggler against its backup replica.
//!
//! Run with: `cargo run --release --example rack_tpch`

use dpu_repro::cluster::{
    serve, serve_pipeline, Cluster, ClusterConfig, FaultPlan, QueryId, ServeConfig, ShardPolicy,
    Speculation, Template,
};
use dpu_repro::sql::tpch;
use dpu_repro::xeon::XeonRack;

fn main() {
    let nodes = 8;
    let db = tpch::generate(2000, 2026);
    println!(
        "Sharding TPC-H ({} orders, {} lineitem rows) across {nodes} DPU nodes, k=2…",
        db.orders.rows(),
        db.lineitem.rows()
    );

    let policy = ShardPolicy::hash(nodes);
    let cfg = ClusterConfig::prototype_slice(nodes, 30_000).with_replicas(2);
    let mut cluster = Cluster::new(db, &policy, cfg);
    println!(
        "Load: {:.3} ms (fact scatter ×2 replicas + dimension broadcast over the fabric)\n",
        cluster.load_seconds() * 1e3
    );

    let mut templates = Vec::new();
    for r in cluster.run_all() {
        assert!(r.matches_single(), "distributed result must equal single-node");
        println!(
            "{:>4}: {:7.2} ms  (local {:6.2} + fabric {:5.3} + merge {:5.3}), exact ✓",
            r.id.name(),
            r.cost.total_seconds() * 1e3,
            r.cost.local_seconds * 1e3,
            r.cost.fabric_seconds * 1e3,
            r.cost.merge_seconds * 1e3,
        );
        templates.push(Template {
            name: r.id.name(),
            cost: r.cost.clone(),
            xeon_seconds: r.single_cost.xeon.seconds,
        });
    }

    // Crash node 3 halfway through Q1's local phase: the query fails
    // over to the surviving replicas and still matches single-node.
    let healthy = templates[0].cost.clone();
    cluster.set_faults(FaultPlan::none().crash(3, healthy.local_seconds * 0.5));
    let under_fault = cluster.try_run_at(QueryId::Q1, 0.0).expect("replicas cover the crash");
    assert!(under_fault.matches_single(), "failover must not change the answer");
    println!(
        "\nCrash node 3 mid-Q1: {} failover(s), {:.2} ms → {:.2} ms, result still exact ✓",
        under_fault.cost.failovers,
        healthy.total_seconds() * 1e3,
        under_fault.cost.total_seconds() * 1e3
    );

    // Rebuild the dead node from surviving replicas and rejoin it.
    let recovery = cluster.recover(3, under_fault.cost.total_seconds());
    println!(
        "Recovery: {} shard(s), {:.1} KiB re-replicated in {:.3} ms; node 3 back in the ring",
        recovery.shards.len(),
        recovery.bytes_moved as f64 / 1024.0,
        recovery.rebuild_seconds * 1e3
    );
    let after = cluster.run(QueryId::Q1);
    assert_eq!(after.cost.failovers, 0, "a recovered cluster routes normally");

    let rack = XeonRack::rack_42u();
    let report = serve(&templates, cluster.watts(), &rack, &ServeConfig::default());
    println!(
        "\nServing: {:.1} QPS at {:.0} W (p50 {:.0} ms, p99 {:.0} ms, mean batch {:.1})",
        report.qps,
        report.cluster_watts,
        report.p50 * 1e3,
        report.p99 * 1e3,
        report.mean_batch
    );
    println!(
        "Xeon 42U rack: {:.1} QPS at {:.0} W → rack performance/watt gain {:.1}×",
        report.xeon_qps, report.xeon_watts, report.perf_per_watt_gain
    );

    // Concurrent pipeline: four batches in flight sharing the NICs and
    // switch, with the adaptive controller batching against a 1.5 s SLO.
    let pipe_cfg = ServeConfig {
        clients: 64,
        concurrency: 4,
        max_batch: 16,
        adaptive: true,
        slo_seconds: Some(1.5),
        ..ServeConfig::default()
    };
    let fabric = cluster.cfg().fabric.clone();
    let pipe =
        serve_pipeline(&templates, cluster.watts(), &rack, &pipe_cfg, None, Some((&fabric, nodes)));
    println!(
        "\nConcurrent pipeline (4 in flight, adaptive, SLO 1.5 s): {:.1} QPS, \
         SLO attainment {:.3}, mean batch {:.1}",
        pipe.qps, pipe.slo_attainment, pipe.mean_batch
    );
    println!(
        "Fabric per batch: {:.3} µs shared vs {:.3} µs isolated (concurrent shuffles queue)",
        pipe.mean_fabric_seconds * 1e6,
        pipe.mean_fabric_isolated_seconds * 1e6
    );

    // Speculative re-execution: node 5 computes at quarter speed; the
    // deadline (p50 shard time × 1.25) trips and the backup replica
    // races it — first finisher wins, result still bit-identical.
    cluster.set_faults(FaultPlan::none().straggle(5, 0.0, 1e9, 0.25));
    let straggled = cluster.run(QueryId::Q5);
    cluster.set_speculation(Some(Speculation::default()));
    let hedged = cluster.run(QueryId::Q5);
    assert!(hedged.matches_single(), "speculation must not change the answer");
    println!(
        "\nNode 5 straggles at 0.25× compute: Q5 {:.2} ms unmitigated → {:.2} ms with \
         {} speculative backup(s), result still exact ✓",
        straggled.cost.total_seconds() * 1e3,
        hedged.cost.total_seconds() * 1e3,
        hedged.cost.speculations
    );
}
