//! Whole-rack failure suite for the spine/leaf topology: with
//! rack-aware `k = 2` placement every TPC-H query must survive the
//! simultaneous death of an entire rack **bit-identically** (every
//! shard keeps a live cross-rack replica), fail cleanly — never
//! wrongly — without replicas, and re-replicate the dead rack from
//! cross-rack survivors.

use std::sync::{Arc, OnceLock};

use dpu_repro::cluster::{
    Cluster, ClusterConfig, ClusterCore, FaultPlan, Placement, QueryError, QueryId, ShardPolicy,
    SingleRefCache,
};
use dpu_repro::pool::Pool;
use dpu_repro::sql::tpch;

const NODES: usize = 8;

/// One shared core per (racks, k) topology, over one shared database
/// and one shared single-node reference cache.
fn core(racks: usize, k: usize) -> Arc<ClusterCore> {
    static CORES: OnceLock<Vec<((usize, usize), Arc<ClusterCore>)>> = OnceLock::new();
    CORES
        .get_or_init(|| {
            let db = Arc::new(tpch::generate(400, 17));
            let single = Arc::new(SingleRefCache::new());
            let policy = ShardPolicy::hash(NODES);
            [(2, 2), (4, 2), (2, 1), (4, 1)]
                .into_iter()
                .map(|(r, k)| {
                    let core = ClusterCore::with_shared(
                        db.clone(),
                        &policy,
                        ClusterConfig::prototype_slice(NODES, 10_000)
                            .with_replicas(k)
                            .with_topology(r, 2.0),
                        single.clone(),
                    );
                    ((r, k), core)
                })
                .collect()
        })
        .iter()
        .find(|((r, kk), _)| *r == racks && *kk == k)
        .expect("topology not prebuilt")
        .1
        .clone()
}

/// All nodes of rack 1 (the failure domain we kill in every test).
fn rack1(racks: usize) -> Vec<usize> {
    let m = NODES / racks;
    (m..2 * m).collect()
}

fn kill_rack(racks: usize, at: f64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for node in rack1(racks) {
        plan = plan.crash(node, at);
    }
    plan
}

#[test]
fn whole_rack_death_mid_query_is_bit_identical_at_k2() {
    // Crash the whole rack mid-execution: the already-dispatched
    // primaries die, so every query pays timeout failovers before
    // re-issuing to the cross-rack copies — and still matches
    // single-node bit for bit.
    let mut cells: Vec<(usize, QueryId)> = Vec::new();
    for racks in [2, 4] {
        for id in QueryId::ALL {
            cells.push((racks, id));
        }
    }
    Pool::global().par_map(cells, |(racks, id)| {
        let healthy_mid = Cluster::from_core(core(racks, 2)).run(id).cost.local_seconds * 0.5;
        let mut c = Cluster::from_core(core(racks, 2));
        c.set_faults(kill_rack(racks, healthy_mid));
        let q = c
            .try_run_at(id, 0.0)
            .unwrap_or_else(|e| panic!("{} with rack 1 of {racks} down: {e}", id.name()));
        assert!(
            q.matches_single(),
            "{} diverged from single-node after rack 1 of {racks} died mid-query",
            id.name()
        );
        assert!(
            q.cost.failovers > 0,
            "{} lost its dispatched primaries and must record failovers",
            id.name()
        );
    });
}

#[test]
fn whole_rack_death_at_query_start_routes_around_silently() {
    // Rack already dead at dispatch: the scheduler skips the dead
    // primaries from the first placement decision — no timeout is paid,
    // so no failover is recorded, and results still match.
    let mut cells: Vec<(usize, QueryId)> = Vec::new();
    for racks in [2, 4] {
        for id in QueryId::ALL {
            cells.push((racks, id));
        }
    }
    Pool::global().par_map(cells, |(racks, id)| {
        let mut c = Cluster::from_core(core(racks, 2));
        c.set_faults(kill_rack(racks, 0.0));
        let q = c
            .try_run_at(id, 0.0)
            .unwrap_or_else(|e| panic!("{} with rack 1 of {racks} down: {e}", id.name()));
        assert!(q.matches_single(), "{} diverged (rack 1 of {racks} down from start)", id.name());
        assert_eq!(q.cost.failovers, 0, "a pre-dispatch death must be routed around, not timed out");
    });
}

#[test]
fn whole_rack_death_without_replicas_fails_cleanly() {
    // k = 1: the dead rack's shards have nowhere to hide. Every query
    // touching them must return ShardUnavailable — a clean refusal,
    // never a silently wrong answer.
    for racks in [2, 4] {
        let mut c = Cluster::from_core(core(racks, 1));
        c.set_faults(kill_rack(racks, 0.0));
        let dead = rack1(racks);
        for id in QueryId::ALL {
            match c.try_run_at(id, 0.0) {
                Err(QueryError::ShardUnavailable { shard }) => assert!(
                    dead.contains(&shard),
                    "{} reported shard {shard} unavailable, but that shard's rack is alive",
                    id.name()
                ),
                Ok(_) => panic!("{} ran without any replica of rack 1's shards", id.name()),
                Err(e) => panic!("{} failed with the wrong error: {e}", id.name()),
            }
        }
    }
}

#[test]
fn dead_rack_recovers_every_shard_from_cross_rack_survivors() {
    for racks in [2, 4] {
        let mut c = Cluster::from_core(core(racks, 2));
        c.set_faults(kill_rack(racks, 1e-6));
        let placement = Placement::rack_aware(NODES, racks, 2);
        for node in rack1(racks) {
            let r = c.recover(node, 1.0);
            assert_eq!(r.node, node);
            let mut expect = placement.shards_on(node);
            let mut got = r.shards.clone();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "recovery must re-stream exactly node {node}'s shards");
            assert!(r.bytes_moved > 0, "re-replication moves the shards' bytes");
            assert!(r.rebuild_seconds > 0.0, "re-streaming over the fabric takes time");
        }
    }
}

#[test]
fn multirack_fault_runs_are_deterministic() {
    // The same fault plan on the same topology must produce the same
    // costs to the last bit — the property the committed
    // BENCH_multirack.json baseline (and its CI byte-diff) stands on.
    let run = || -> Vec<(f64, usize)> {
        let mut c = Cluster::from_core(core(4, 2));
        c.set_faults(kill_rack(4, 1e-6));
        QueryId::ALL
            .iter()
            .map(|&id| {
                let q = c.try_run_at(id, 0.0).expect("k=2 survives a rack death");
                (q.cost.total_seconds(), q.cost.failovers)
            })
            .collect()
    };
    let (a, b) = (run(), run());
    for (id, (x, y)) in QueryId::ALL.iter().zip(a.iter().zip(&b)) {
        assert_eq!(x.0.to_bits(), y.0.to_bits(), "{} cost drifted between runs", id.name());
        assert_eq!(x.1, y.1, "{} failover count drifted between runs", id.name());
    }
}
