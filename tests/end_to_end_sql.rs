//! End-to-end SQL: a table materialized in simulated DRAM is hardware-
//! partitioned by the DMS into per-core DMEMs, each "core" aggregates its
//! partition, and the merged result must equal the reference group-by.

use dpu_repro::dms::{PartitionJob, PartitionScheme};
use dpu_repro::soc::{CoreAction, CoreCtx, CoreProgram, Dpu, DpuConfig};
use dpu_repro::sql::{AggFunc, Column, GroupBySpec, Table};
use std::collections::HashMap;

#[test]
fn partitioned_group_by_on_the_soc_matches_reference() {
    let mut dpu = Dpu::new(DpuConfig::nm40());
    let n = dpu.n_cores();

    // A two-column table: key (32 distinct groups × crc-spread) + value.
    let rows = 8192u64;
    let keys: Vec<i64> = (0..rows as i64).map(|r| (r * 131) % 200).collect();
    let vals: Vec<i64> = (0..rows as i64).map(|r| r % 97).collect();
    let table = Table::new(vec![Column::i32("k", keys.clone()), Column::i32("v", vals.clone())]);
    let layout = table.materialize(dpu.phys_mut(), 0);

    // Core 0 launches the hardware partition job; the engine routes rows
    // into all 32 DMEMs.
    let job = PartitionJob {
        key_col_addr: layout.col_addrs[0],
        data_col_addrs: vec![layout.col_addrs[1]],
        rows,
        col_width: 4,
        scheme: PartitionScheme::HashRadix { radix_bits: 5 },
        dest_dmem_base: 0,
        dest_capacity: 8 * 1024,
    };
    let mut rows_per_part: Vec<u64> = Vec::new();
    {
        let mut launched = false;
        let mut programs: Vec<Box<dyn CoreProgram>> = Vec::new();
        let job2 = job.clone();
        programs.push(Box::new(move |ctx: &mut CoreCtx<'_>| {
            if let Some(rp) = ctx.partition_rows.take() {
                // Stash counts in DRAM for the host to read back.
                for (i, &c) in rp.iter().enumerate() {
                    ctx.phys.write_u64((1 << 20) + i as u64 * 8, c);
                }
                return CoreAction::Done;
            }
            if launched {
                return CoreAction::Done;
            }
            launched = true;
            CoreAction::RunPartition(Box::new(job2.clone()))
        }));
        for _ in 1..n {
            programs.push(Box::new(|_: &mut CoreCtx<'_>| CoreAction::Done));
        }
        dpu.run(&mut programs).expect("partition run");
        for i in 0..32 {
            rows_per_part.push(dpu.phys().read_u64((1 << 20) + i * 8));
        }
    }
    assert_eq!(rows_per_part.iter().sum::<u64>(), rows);

    // Host-side per-core aggregation over the DMEM contents (what each
    // dpCore would do with its DMEM-resident hash table).
    let mut merged: HashMap<i64, (i64, i64)> = HashMap::new(); // key → (count, sum)
    for (core, &cnt) in rows_per_part.iter().enumerate() {
        for i in 0..cnt {
            let k = dpu.dmem(core).read_u32((i * 4) as u32) as i32 as i64;
            let v = dpu.dmem(core).read_u32(8 * 1024 + (i * 4) as u32) as i32 as i64;
            let e = merged.entry(k).or_insert((0, 0));
            e.0 += 1;
            e.1 += v;
        }
    }

    // Reference group-by.
    let spec = GroupBySpec {
        group_cols: vec!["k".into()],
        aggs: vec![("cnt".into(), AggFunc::Count), ("sum".into(), AggFunc::Sum("v".into()))],
    };
    let reference = spec.execute(&table, None);
    assert_eq!(reference.rows(), merged.len());
    for r in 0..reference.rows() {
        let k = reference.column("k").unwrap().data[r];
        let (cnt, sum) = merged[&k];
        assert_eq!(cnt, reference.column("cnt").unwrap().data[r], "count for key {k}");
        assert_eq!(sum, reference.column("sum").unwrap().data[r], "sum for key {k}");
    }
}

#[test]
fn partition_throughput_beats_harp_on_the_soc() {
    use dpu_repro::sim::Frequency;
    let mut dpu = Dpu::new(DpuConfig::nm40());
    // 32 K rows: ~1 K rows per partition × 4 columns fills the 32 KB DMEMs.
    let rows = 32 * 1024u64;
    let cols: Vec<i64> = (0..rows as i64).map(|r| r.wrapping_mul(2654435761)).collect();
    let t = Table::new(vec![
        Column::i32("k", cols.iter().map(|&v| v as i32 as i64).collect()),
        Column::i32("a", (0..rows as i64).collect()),
        Column::i32("b", (0..rows as i64).rev().collect()),
        Column::i32("c", vec![7; rows as usize]),
    ]);
    let layout = t.materialize(dpu.phys_mut(), 0);
    let job = PartitionJob {
        key_col_addr: layout.col_addrs[0],
        data_col_addrs: layout.col_addrs[1..].to_vec(),
        rows,
        col_width: 4,
        scheme: PartitionScheme::HashRadix { radix_bits: 5 },
        dest_dmem_base: 0,
        dest_capacity: 8 * 1024,
    };
    // Direct DMS invocation for timing (bypasses the program layer).
    let mut launched = false;
    let mut programs: Vec<Box<dyn CoreProgram>> = vec![Box::new(move |ctx: &mut CoreCtx<'_>| {
        if launched || ctx.partition_rows.is_some() {
            return CoreAction::Done;
        }
        launched = true;
        CoreAction::RunPartition(Box::new(job.clone()))
    })];
    for _ in 1..dpu.n_cores() {
        programs.push(Box::new(|_: &mut CoreCtx<'_>| CoreAction::Done));
    }
    let report = dpu.run(&mut programs).expect("runs");
    let gbps = Frequency::DPU_CORE.bytes_per_sec(report.dms_bytes, report.finish) / 1e9;
    assert!(gbps > 6.0, "partitioning at {gbps:.2} GB/s must beat HARP");
    assert!(gbps > 8.5, "expected ≈9-10 GB/s, got {gbps:.2}");
}
