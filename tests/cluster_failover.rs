//! Cluster fault-injection suite: every TPC-H query must survive node
//! crashes with **bit-identical** results as long as each shard keeps a
//! live replica, fail cleanly (never wrongly) when one does not, and
//! behave deterministically under any fault plan.
//!
//! The database is generated once and sharded once per replication
//! factor into shared [`ClusterCore`]s; every test case is an O(1)
//! [`Cluster::fork`], and the big every-node / every-pair matrices fan
//! their cells out on the host pool (results are pure per cell, so the
//! fan-out affects wall-clock only).

use std::sync::{Arc, OnceLock};

use dpu_repro::cluster::{
    Cluster, ClusterConfig, ClusterCore, FaultPlan, QueryError, QueryId, ShardPolicy,
    SingleRefCache, Speculation,
};
use dpu_repro::pool::Pool;
use dpu_repro::sql::tpch;

const NODES: usize = 8;

/// One shared core per replication factor, over one shared database and
/// one shared single-node reference cache.
fn core(k: usize) -> Arc<ClusterCore> {
    static CORES: OnceLock<[Arc<ClusterCore>; 3]> = OnceLock::new();
    CORES.get_or_init(|| {
        let db = Arc::new(tpch::generate(500, 13));
        let single = Arc::new(SingleRefCache::new());
        let policy = ShardPolicy::hash(NODES);
        [1, 2, 3].map(|k| {
            ClusterCore::with_shared(
                db.clone(),
                &policy,
                ClusterConfig::prototype_slice(NODES, 10_000).with_replicas(k),
                single.clone(),
            )
        })
    })[k - 1]
        .clone()
}

fn cluster(k: usize) -> Cluster {
    Cluster::from_core(core(k))
}

/// The healthy local-phase duration of `id`, for aiming crashes mid-query.
fn healthy_local_seconds(id: QueryId, k: usize) -> f64 {
    cluster(k).run(id).cost.local_seconds
}

/// The healthy local-phase duration of all eight queries, computed on
/// the host pool.
fn healthy_mids(k: usize) -> Vec<f64> {
    Pool::global().par_map(QueryId::ALL.to_vec(), |id| healthy_local_seconds(id, k))
}

#[test]
fn every_query_survives_every_single_node_crash_at_k2() {
    let mids = healthy_mids(2);
    let mut cells: Vec<(QueryId, usize, f64)> = Vec::new();
    for (qi, id) in QueryId::ALL.into_iter().enumerate() {
        for victim in 0..NODES {
            cells.push((id, victim, mids[qi] * 0.5));
        }
    }
    Pool::global().par_map(cells, |(id, victim, mid)| {
        let mut c = cluster(2);
        c.set_faults(FaultPlan::none().crash(victim, mid));
        let q = c
            .try_run_at(id, 0.0)
            .unwrap_or_else(|e| panic!("{} with node {victim} down: {e}", id.name()));
        assert!(
            q.matches_single(),
            "{} diverged from single-node after node {victim} crashed mid-query",
            id.name()
        );
    });
}

#[test]
fn every_query_survives_crashes_at_query_start_at_k2() {
    // Crash at t = 0: the scheduler must route around the dead node from
    // the first placement decision, not just on failover.
    let mut cells: Vec<(QueryId, usize)> = Vec::new();
    for id in QueryId::ALL {
        for victim in 0..NODES {
            cells.push((id, victim));
        }
    }
    Pool::global().par_map(cells, |(id, victim)| {
        let mut c = cluster(2);
        c.set_faults(FaultPlan::none().crash(victim, 0.0));
        let q = c
            .try_run_at(id, 0.0)
            .unwrap_or_else(|e| panic!("{} with node {victim} down: {e}", id.name()));
        assert!(q.matches_single(), "{} diverged (node {victim} down from start)", id.name());
    });
}

#[test]
fn every_query_survives_every_node_pair_crash_at_k3() {
    // k = 3 tolerates any two failures: all node pairs, crashing at two
    // different instants so one failover is already in flight when the
    // second node dies. 8 queries × 28 pairs = 224 cells on the pool.
    let mids = healthy_mids(3);
    let mut cells: Vec<(QueryId, usize, usize, f64)> = Vec::new();
    for (qi, id) in QueryId::ALL.into_iter().enumerate() {
        for a in 0..NODES {
            for b in (a + 1)..NODES {
                cells.push((id, a, b, mids[qi] * 0.5));
            }
        }
    }
    Pool::global().par_map(cells, |(id, a, b, mid)| {
        let mut c = cluster(3);
        c.set_faults(FaultPlan::none().crash(a, mid * 0.6).crash(b, mid));
        let q = c
            .try_run_at(id, 0.0)
            .unwrap_or_else(|e| panic!("{} with nodes {a},{b} down: {e}", id.name()));
        assert!(q.matches_single(), "{} diverged after nodes {a} and {b} crashed", id.name());
    });
}

#[test]
fn k1_crash_makes_its_shard_unavailable_for_all_queries() {
    // Unreplicated, any crash strands exactly the victim's shard.
    for id in QueryId::ALL {
        let mut c = cluster(1);
        c.set_faults(FaultPlan::none().crash(3, 0.0));
        match c.try_run_at(id, 0.0) {
            Err(QueryError::ShardUnavailable { shard: 3 }) => {}
            other => panic!("{}: expected ShardUnavailable(3), got {other:?}", id.name()),
        }
    }
}

#[test]
fn losing_every_replica_is_a_clean_error_for_all_queries() {
    // k = 2: shard s lives on nodes {s, s+1}. Killing both strands the
    // shard — every query must report ShardUnavailable, never panic or
    // return a partial answer.
    let shard = 2usize;
    for id in QueryId::ALL {
        let mut c = cluster(2);
        c.set_faults(FaultPlan::none().crash(shard, 0.0).crash((shard + 1) % NODES, 0.0));
        match c.try_run_at(id, 0.0) {
            Err(QueryError::ShardUnavailable { shard: s }) => {
                assert_eq!(s, shard, "{}: wrong shard blamed", id.name())
            }
            Ok(_) => panic!("{} answered with shard {shard} fully dead", id.name()),
            Err(other) => panic!("{}: expected ShardUnavailable, got {other}", id.name()),
        }
    }
}

#[test]
fn late_total_shard_loss_is_still_an_error() {
    // Both replicas die mid-query, after the local phase may have begun:
    // the re-issue path must also conclude ShardUnavailable.
    let mid = healthy_local_seconds(QueryId::Q1, 2) * 0.5;
    let mut c = cluster(2);
    c.set_faults(FaultPlan::none().crash(1, mid * 0.9).crash(2, mid));
    match c.try_run_at(QueryId::Q1, 0.0) {
        Err(QueryError::ShardUnavailable { shard }) => {
            assert!(shard == 1 || shard == 2, "blamed shard {shard} is not one of the dead")
        }
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
}

#[test]
fn fault_runs_are_deterministic() {
    // Same fault plan, two independently built clusters: identical
    // outputs AND identical cost breakdowns, bit for bit.
    let plan = FaultPlan::none()
        .crash(4, 0.001)
        .degrade_nic(0, 0.0, 10.0, 0.5)
        .straggle(3, 0.0, 10.0, 0.5);
    for id in QueryId::ALL {
        let mut a = cluster(2);
        a.set_faults(plan.clone());
        let mut b = cluster(2);
        b.set_faults(plan.clone());
        let ra = a.try_run_at(id, 0.0).expect("replicas cover one crash");
        let rb = b.try_run_at(id, 0.0).expect("replicas cover one crash");
        assert_eq!(ra.output, rb.output, "{} output nondeterministic", id.name());
        assert_eq!(ra.cost, rb.cost, "{} cost nondeterministic under faults", id.name());
    }
}

#[test]
fn seeded_random_plans_yield_reproducible_runs() {
    // A drawn-from-seed plan exercises the same determinism end to end:
    // same seed ⇒ same faults ⇒ same routing ⇒ same report.
    let horizon = 1.0;
    let plan = FaultPlan::random(2026, NODES, horizon, 0.3);
    assert_eq!(plan, FaultPlan::random(2026, NODES, horizon, 0.3));
    let run = |p: &FaultPlan| {
        let mut c = cluster(3);
        c.set_faults(p.clone());
        QueryId::ALL.map(|id| c.try_run_at(id, 0.0).map(|q| (q.output, q.cost)))
    };
    let a = run(&plan);
    let b = run(&plan);
    assert_eq!(a, b, "seeded fault runs must be byte-identical");
}

#[test]
fn failover_is_reported_and_priced() {
    let id = QueryId::Q5;
    let mid = healthy_local_seconds(id, 2) * 0.5;
    let mut healthy = cluster(2);
    let base = healthy.run(id);
    let mut faulty = cluster(2);
    faulty.set_faults(FaultPlan::none().crash(0, mid));
    let q = faulty.try_run_at(id, 0.0).expect("one replica survives");
    assert!(q.cost.failovers >= 1, "a mid-query crash must surface as a failover");
    assert!(
        q.cost.total_seconds() > base.cost.total_seconds(),
        "failover must cost wall-clock time"
    );
    assert_eq!(base.cost.failovers, 0);
}

#[test]
fn speculation_keeps_results_bit_identical_under_stragglers() {
    // A 4× straggler at k ∈ {2, 3}: the backup replica races the slow
    // node and whichever finishes first ships its partial — the output
    // must stay bit-identical to single-node execution for every query.
    for k in [2usize, 3] {
        let plan = FaultPlan::none().straggle(3, 0.0, 1e9, 0.25);
        for id in QueryId::ALL {
            let mut c = cluster(k);
            c.set_faults(plan.clone());
            c.set_speculation(Some(Speculation::default()));
            let q = c.try_run_at(id, 0.0).unwrap_or_else(|e| panic!("{}: {e}", id.name()));
            assert!(q.matches_single(), "{} diverged under speculation at k={k}", id.name());
            assert!(
                q.cost.speculations > 0,
                "{} at k={k}: a 4× straggler must trip the deadline",
                id.name()
            );
        }
    }
}

#[test]
fn first_finisher_wins_and_cuts_the_straggler_tail() {
    // Same straggle plan with and without speculation: taking the first
    // finisher must strictly shorten the local phase (the backup beats
    // the 4× straggler), and never ship a partial twice — the fabric
    // byte accounting matches the unspeculated run exactly.
    for k in [2usize, 3] {
        let plan = FaultPlan::none().straggle(3, 0.0, 1e9, 0.25);
        for id in QueryId::ALL {
            let mut plain = cluster(k);
            plain.set_faults(plan.clone());
            let base = plain.try_run_at(id, 0.0).expect("stragglers never strand shards");
            let mut spec = cluster(k);
            spec.set_faults(plan.clone());
            spec.set_speculation(Some(Speculation::default()));
            let fast = spec.try_run_at(id, 0.0).expect("stragglers never strand shards");
            assert_eq!(fast.output, base.output, "{} output changed", id.name());
            assert!(
                fast.cost.local_seconds < base.cost.local_seconds,
                "{} at k={k}: the backup must finish first ({} vs {})",
                id.name(),
                fast.cost.local_seconds,
                base.cost.local_seconds
            );
            // Only the winner ships its partial, so speculation never
            // duplicates fabric traffic. Single-gather plans can only
            // shed bytes (a backup that wins on the gather
            // coordinator's own node makes that partial local); Q10's
            // all-to-all locality shifts by at most a chunk's worth in
            // either direction when a shard moves nodes — far below the
            // full-partial delta a double-ship would cost.
            if id == QueryId::Q10 {
                let delta = fast.cost.fabric_bytes.abs_diff(base.cost.fabric_bytes);
                assert!(
                    delta * 10 < base.cost.fabric_bytes,
                    "Q10 at k={k}: shuffle bytes moved by {delta} of {} — speculation must \
                     re-route chunks, not duplicate them",
                    base.cost.fabric_bytes
                );
            } else {
                assert!(
                    fast.cost.fabric_bytes <= base.cost.fabric_bytes,
                    "{} at k={k}: speculation duplicated fabric traffic ({} vs {})",
                    id.name(),
                    fast.cost.fabric_bytes,
                    base.cost.fabric_bytes
                );
            }
        }
    }
}

#[test]
fn speculation_is_a_no_op_without_replicas() {
    // k = 1: no shard has a second replica, so the deadline has nowhere
    // to launch a backup — the full cost breakdown must be unchanged.
    let plan = FaultPlan::none().straggle(3, 0.0, 1e9, 0.25);
    for id in QueryId::ALL {
        let mut plain = cluster(1);
        plain.set_faults(plan.clone());
        let base = plain.try_run_at(id, 0.0).expect("a straggler is not a crash");
        let mut spec = cluster(1);
        spec.set_faults(plan.clone());
        spec.set_speculation(Some(Speculation::default()));
        let same = spec.try_run_at(id, 0.0).expect("a straggler is not a crash");
        assert_eq!(same.output, base.output, "{} output changed", id.name());
        assert_eq!(same.cost, base.cost, "{} cost changed at k=1", id.name());
        assert_eq!(same.cost.speculations, 0, "{} speculated without a replica", id.name());
    }
}

#[test]
fn speculation_leaves_healthy_runs_untouched() {
    // With no straggler the deadline (median × slack) never fires: the
    // speculated cluster's cost must equal the plain one bit for bit.
    for id in QueryId::ALL {
        let mut plain = cluster(2);
        let base = plain.run(id);
        let mut spec = cluster(2);
        spec.set_speculation(Some(Speculation::default()));
        let same = spec.run(id);
        assert_eq!(same.output, base.output, "{} output changed", id.name());
        assert_eq!(same.cost, base.cost, "{} healthy cost changed", id.name());
        assert_eq!(same.cost.speculations, 0, "{} speculated while healthy", id.name());
    }
}

#[test]
fn recovery_restores_failover_free_routing() {
    let mut c = cluster(2);
    c.set_faults(FaultPlan::none().crash(5, 0.0));
    let degraded = c.try_run_at(QueryId::Q6, 0.0).expect("replicas cover the crash");
    assert!(degraded.matches_single());
    let report = c.recover(5, 1.0);
    assert_eq!(report.node, 5);
    assert!(report.rebuild_seconds > 0.0);
    assert!(report.bytes_moved > 0);
    let after = c.run(QueryId::Q6);
    assert_eq!(after.cost.failovers, 0, "recovered node must serve its shards again");
    assert!(after.matches_single());
}
