//! Failure injection: the simulator must *detect* the failure modes the
//! paper's debugging tooling existed for, not silently mis-simulate.

use dpu_repro::dms::{DataDescriptor, DescKind, Descriptor, EventCond};
use dpu_repro::soc::{CoreAction, CoreCtx, CoreProgram, Dpu, DpuConfig, DpuError};

fn idle() -> Box<dyn CoreProgram> {
    Box::new(|_: &mut CoreCtx<'_>| CoreAction::Done)
}

#[test]
fn concurrent_gathers_hang_the_soc_and_are_reported() {
    // Two cores in different macros issue gathers concurrently on the
    // first-silicon DMS: the run must fail with the FIFO-overflow hang,
    // not deadlock silently or return wrong data.
    let mut dpu = Dpu::new(DpuConfig::nm40());
    for i in 0..64u64 {
        dpu.phys_mut().write_u32(i * 4, i as u32);
    }
    for core in [0usize, 20] {
        dpu.dmem_mut(core).write(512, &[0xFF; 8]);
    }
    let mut programs: Vec<Box<dyn CoreProgram>> = Vec::new();
    for core in 0..dpu.n_cores() {
        if core == 0 || core == 20 {
            let mut step = 0;
            programs.push(Box::new(move |_: &mut CoreCtx<'_>| {
                step += 1;
                match step {
                    1 => CoreAction::Push {
                        chan: 0,
                        desc: Descriptor::Data(DataDescriptor {
                            kind: DescKind::DmemToDms,
                            ..DataDescriptor::read(0, 512, 8, 1)
                        }),
                    },
                    2 => CoreAction::Push {
                        chan: 0,
                        desc: Descriptor::Data(DataDescriptor {
                            gather_src: true,
                            ..DataDescriptor::read(0, 0, 64, 4).with_notify(0)
                        }),
                    },
                    3 => CoreAction::Wfe(0),
                    _ => CoreAction::Done,
                }
            }));
        } else {
            programs.push(idle());
        }
    }
    match dpu.run(&mut programs) {
        Err(DpuError::Dms(e)) => {
            assert!(e.to_string().contains("gather count FIFO overflow"), "{e}");
        }
        other => panic!("expected the gather hang, got {other:?}"),
    }
}

#[test]
fn descriptor_waiting_on_never_set_event_deadlocks_cleanly() {
    let mut dpu = Dpu::new(DpuConfig::test_small());
    let mut programs: Vec<Box<dyn CoreProgram>> = Vec::new();
    let mut step = 0;
    programs.push(Box::new(move |_: &mut CoreCtx<'_>| {
        step += 1;
        match step {
            // A read gated on event 9 being set — which nobody sets —
            // followed by a wfe on its completion notify.
            1 => CoreAction::Push {
                chan: 0,
                desc: Descriptor::Data(
                    DataDescriptor::read(0, 0, 16, 4)
                        .with_wait(EventCond::is_set(9))
                        .with_notify(1),
                ),
            },
            2 => CoreAction::Wfe(1),
            _ => CoreAction::Done,
        }
    }));
    for _ in 1..dpu.n_cores() {
        programs.push(idle());
    }
    match dpu.run(&mut programs) {
        Err(DpuError::Deadlock { blocked }) => assert_eq!(blocked, vec![0]),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn oversized_internal_transfer_is_a_reported_hang() {
    let mut dpu = Dpu::new(DpuConfig::test_small());
    let mut programs: Vec<Box<dyn CoreProgram>> = Vec::new();
    let mut sent = false;
    programs.push(Box::new(move |_: &mut CoreCtx<'_>| {
        if sent {
            return CoreAction::Done;
        }
        sent = true;
        CoreAction::Push {
            chan: 0,
            desc: Descriptor::Data(DataDescriptor {
                kind: DescKind::DdrToDms,
                // 32 KB into an 8 KB column-memory bank.
                ..DataDescriptor::read(0, 0, 8192, 4)
            }),
        }
    }));
    for _ in 1..dpu.n_cores() {
        programs.push(idle());
    }
    match dpu.run(&mut programs) {
        Err(DpuError::Dms(e)) => assert!(e.to_string().contains("column memory bank"), "{e}"),
        other => panic!("expected a bad-descriptor report, got {other:?}"),
    }
}

#[test]
fn invalidating_dirty_lines_is_flagged_as_data_loss() {
    // The §4 tooling scenario: a programmer invalidates before flushing.
    use dpu_repro::runtime::CoherenceTracker;
    let mut t = CoherenceTracker::new(64);
    t.record_write(3, 0x1000);
    t.record_invalidate(3, 0x1000); // lost update!
    assert_eq!(t.lost_dirty_lines(), 1);
}

#[test]
fn heap_exhaustion_degrades_gracefully() {
    use dpu_repro::runtime::DpuHeap;
    let mut heap = DpuHeap::new(0, 4096, 2);
    let mut got = 0;
    while heap.alloc(0, 64).is_some() {
        got += 1;
        assert!(got < 1000, "runaway");
    }
    // Frees make memory allocatable again.
    // (Allocate-from-cache after synthetic free.)
    heap.free(0, 0, 64);
    assert!(heap.alloc(0, 64).is_some());
}

#[test]
fn isa_program_memory_fault_panics_with_location() {
    use dpu_repro::isa::asm::assemble;
    use dpu_repro::isa::interp::Cpu;
    let prog = assemble("lui r1, 0xFFFF\nlw r2, 0(r1)\nhalt").unwrap();
    let mut cpu = Cpu::new(1024);
    let err = cpu.run(&prog, 100).unwrap_err();
    assert_eq!(err.pc, 1);
    assert!(err.to_string().contains("memory fault"));
}
