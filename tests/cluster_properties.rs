//! Property tests for the rack-scale sharding layer (`dpu-cluster`):
//! partitioning, skew, replica placement,
//! distributed-vs-single-node exactness, and the serving pipeline's
//! admission/batching invariants.

use proptest::prelude::*;

use dpu_repro::cluster::{
    serve, shard_table, shard_tpch, shard_tpch_replicated, AdaptiveBatch, Cluster, ClusterConfig,
    ClusterQueryCost, NodeCost, Placement, QueryId, ServeConfig, ShardPolicy, SkewReport, Template,
};
use dpu_repro::sql::tpch;
use dpu_repro::sql::{Column, Table};
use dpu_repro::xeon::XeonRack;

/// A synthetic serving template with `local` seconds of mem-bound work
/// per node (cpu at a quarter of it, so batching up to 4 is free).
fn serve_template(local: f64) -> Template {
    Template {
        name: "synthetic",
        cost: ClusterQueryCost {
            per_node: vec![NodeCost { mem_seconds: local, cpu_seconds: local / 4.0 }; 8],
            local_seconds: local,
            fabric_seconds: local / 10.0,
            merge_seconds: local / 100.0,
            fabric_bytes: 1 << 20,
            failovers: 0,
            speculations: 0,
        },
        xeon_seconds: 0.5,
    }
}

fn arb_policy(keys: &[i64], shards: usize, use_range: bool) -> ShardPolicy {
    if use_range {
        ShardPolicy::range_over(keys, shards)
    } else {
        ShardPolicy::hash(shards)
    }
}

proptest! {
    #[test]
    fn every_row_lands_on_exactly_one_shard(
        keys in proptest::collection::vec(-5000i64..5000, 1..400),
        shards in 1usize..12,
        use_range in any::<bool>(),
    ) {
        let vals: Vec<i64> = keys.iter().map(|&k| k.wrapping_mul(7)).collect();
        let table = Table::new(vec![
            Column::i64("k", keys.clone()),
            Column::i64("v", vals.clone()),
        ]);
        let policy = arb_policy(&keys, shards, use_range);
        let parts = shard_table(&table, "k", &policy);
        prop_assert_eq!(parts.len(), policy.shards());
        // Conservation: every row appears exactly once across shards,
        // values still attached to their keys, order preserved in-shard.
        let total: usize = parts.iter().map(Table::rows).sum();
        prop_assert_eq!(total, table.rows());
        let mut seen: Vec<(i64, i64)> = Vec::new();
        for (s, part) in parts.iter().enumerate() {
            let k = &part.columns[part.col_index("k")].data;
            let v = &part.columns[part.col_index("v")].data;
            for (&key, &val) in k.iter().zip(v) {
                prop_assert_eq!(policy.shard_of(key), s, "row on wrong shard");
                prop_assert_eq!(val, key.wrapping_mul(7), "row torn from its value");
                seen.push((key, val));
            }
        }
        let mut expect: Vec<(i64, i64)> = keys.into_iter().zip(vals).collect();
        expect.sort_unstable();
        seen.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    #[test]
    fn hash_sharding_bounds_skew(seed in 0u64..1000, shards in 2usize..9) {
        // Distinct keys hash-shard near-uniformly: no shard should hold
        // more than 2× its fair share of a 4096-key universe.
        let keys: Vec<i64> = (0..4096).map(|i| i * 31 + seed as i64 * 97).collect();
        let policy = ShardPolicy::hash(shards);
        let mut counts = vec![0usize; shards];
        for &k in &keys {
            counts[policy.shard_of(k)] += 1;
        }
        let fair = keys.len() / shards;
        for (s, &c) in counts.iter().enumerate() {
            prop_assert!(c > 0, "shard {s} is empty");
            prop_assert!(c <= 2 * fair, "shard {s} holds {c} of {} keys", keys.len());
        }
    }

    #[test]
    fn range_bounds_are_sorted_and_partition_is_monotonic(
        keys in proptest::collection::vec(-10_000i64..10_000, 8..300),
        shards in 2usize..9,
    ) {
        let policy = ShardPolicy::range_over(&keys, shards);
        if let ShardPolicy::Range { bounds } = &policy {
            prop_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds not ascending");
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let parts: Vec<usize> = sorted.iter().map(|&k| policy.shard_of(k)).collect();
        prop_assert!(parts.windows(2).all(|w| w[0] <= w[1]), "non-monotonic placement");
        prop_assert!(parts.iter().all(|&p| p < policy.shards()));
    }

    #[test]
    fn co_sharded_facts_keep_orders_and_lineitem_together(
        orders_n in 40usize..200,
        seed in 0u64..64,
        shards in 2usize..9,
        use_range in any::<bool>(),
    ) {
        let db = tpch::generate(orders_n, seed);
        let okeys = &db.orders.columns[db.orders.col_index("o_orderkey")].data;
        let policy = arb_policy(okeys, shards, use_range);
        let sharded = shard_tpch(&db, &policy);
        prop_assert_eq!(sharded.n_nodes(), policy.shards());
        let o_total: usize = sharded.shards.iter().map(|n| n.orders.rows()).sum();
        let l_total: usize = sharded.shards.iter().map(|n| n.lineitem.rows()).sum();
        prop_assert_eq!(o_total, db.orders.rows());
        prop_assert_eq!(l_total, db.lineitem.rows());
        for node in &sharded.shards {
            // Every lineitem row's order lives on the same node.
            let owned: std::collections::HashSet<i64> = node
                .orders.columns[node.orders.col_index("o_orderkey")].data
                .iter().copied().collect();
            for &lk in &node.lineitem.columns[node.lineitem.col_index("l_orderkey")].data {
                prop_assert!(owned.contains(&lk), "lineitem stranded from its order");
            }
            // Dimensions are fully replicated.
            prop_assert_eq!(node.customer.rows(), db.customer.rows());
            prop_assert_eq!(node.nation.rows(), db.nation.rows());
        }
    }

    #[test]
    fn every_shard_has_exactly_k_distinct_owners(
        nodes in 1usize..24,
        k_raw in 1usize..6,
    ) {
        let k = k_raw.min(nodes);
        let p = Placement::new(nodes, k);
        for s in 0..nodes {
            let owners = p.owners(s);
            prop_assert_eq!(owners.len(), k, "shard {} must have k owners", s);
            let distinct: std::collections::HashSet<usize> = owners.iter().copied().collect();
            prop_assert_eq!(distinct.len(), k, "shard {} owners must be distinct", s);
            prop_assert!(owners.iter().all(|&o| o < nodes));
            prop_assert_eq!(owners[0], p.primary(s), "first owner is the primary");
        }
    }

    #[test]
    fn failed_nodes_shards_spread_over_at_least_two_survivors(
        nodes in 3usize..24,
        k_raw in 2usize..6,
        failed in 0usize..24,
    ) {
        // Chained declustering's point: the shards a dead node carried are
        // taken over by *different* survivors, not one mirror.
        let k = k_raw.min(nodes);
        let failed = failed % nodes;
        let p = Placement::new(nodes, k);
        let takeovers: std::collections::HashSet<usize> = p
            .shards_on(failed)
            .into_iter()
            .map(|s| {
                *p.owners(s).iter().find(|&&o| o != failed).expect("k ≥ 2 leaves a survivor")
            })
            .collect();
        prop_assert!(
            takeovers.len() >= 2,
            "node {}'s load fell on a single survivor: {:?}",
            failed,
            takeovers
        );
        prop_assert!(!takeovers.contains(&failed));
    }

    #[test]
    fn replica_sets_are_stable_under_node_renumbering(
        nodes in 1usize..24,
        k_raw in 1usize..6,
        rot in 0usize..24,
    ) {
        // Rotating every node id by a constant rotates each shard's owner
        // set the same way: placement depends only on ring geometry, so a
        // renumbering never reshuffles which data sits together.
        let k = k_raw.min(nodes);
        let p = Placement::new(nodes, k);
        for s in 0..nodes {
            let rotated: Vec<usize> =
                p.owners(s).iter().map(|&o| (o + rot) % nodes).collect();
            prop_assert_eq!(p.owners((s + rot) % nodes), rotated);
        }
    }

    #[test]
    fn k1_reproduces_the_unreplicated_placement(
        orders_n in 40usize..120,
        seed in 0u64..32,
        shards in 2usize..7,
    ) {
        let p = Placement::new(shards, 1);
        for s in 0..shards {
            prop_assert_eq!(p.owners(s), vec![s]);
            prop_assert_eq!(p.shards_on(s), vec![s]);
        }
        let db = tpch::generate(orders_n, seed);
        let policy = ShardPolicy::hash(shards);
        let base = shard_tpch(&db, &policy);
        let one = shard_tpch_replicated(&db, &policy, 1);
        prop_assert_eq!(one.scatter_bytes, base.scatter_bytes);
        prop_assert_eq!(one.k(), 1);
        for (a, b) in base.shards.iter().zip(&one.shards) {
            prop_assert_eq!(a.orders.rows(), b.orders.rows());
            prop_assert_eq!(a.lineitem.rows(), b.lineitem.rows());
        }
    }

    #[test]
    fn distributed_equals_single_node_on_random_databases(
        orders_n in 40usize..160,
        seed in 0u64..32,
        shards in 2usize..7,
        use_range in any::<bool>(),
        pick in 0usize..8,
    ) {
        // Full 8-query exactness is covered once below; per-case we spot
        // check one query on a random db/policy to keep 256 cases fast.
        let db = tpch::generate(orders_n, seed);
        let okeys = &db.orders.columns[db.orders.col_index("o_orderkey")].data;
        let policy = arb_policy(okeys, shards, use_range);
        let cfg = ClusterConfig::prototype_slice(policy.shards(), 10_000);
        let mut cluster = Cluster::new(db, &policy, cfg);
        let r = cluster.run(QueryId::ALL[pick]);
        prop_assert!(r.matches_single(), "{} diverged from single-node", r.id.name());
        prop_assert!(r.cost.total_seconds() > 0.0);
    }

    #[test]
    fn adaptive_depth_never_exceeds_queue_or_cap(
        cap in 1usize..32,
        slo_on in any::<bool>(),
        latencies in proptest::collection::vec(0.0f64..3.0, 0..128),
        queue_len in 0usize..100,
    ) {
        // The controller may deepen or shed freely, but the dispatched
        // depth is always in [1, min(queue, cap)] (empty queue ⇒ 1; the
        // caller never dispatches from an empty queue).
        let mut ctl = AdaptiveBatch::new(cap, slo_on.then_some(1.0));
        for &l in &latencies {
            ctl.observe(l, queue_len);
            let d = ctl.depth(queue_len);
            prop_assert!(d >= 1, "depth must stay positive");
            prop_assert!(d <= cap, "depth {} above cap {}", d, cap);
            prop_assert!(d <= queue_len.max(1), "depth {} above queue {}", d, queue_len);
            prop_assert!(ctl.allowed() >= 1.0 && ctl.allowed() <= cap as f64);
        }
    }

    #[test]
    fn serving_conserves_arrivals_under_any_config(
        clients in 1usize..64,
        think_ms in 0u32..400,
        max_batch in 1usize..20,
        admit_cap in 1usize..64,
        concurrency in 1usize..6,
        adaptive in any::<bool>(),
        slo_ms in proptest::option::of(50u32..3000),
        local_ms in 5u32..100,
        seed in any::<u64>(),
    ) {
        // Whatever the pipeline shape — concurrency, adaptive batching,
        // SLO — every admitted query is either completed or still queued
        // at the horizon, attainment is a fraction, and percentiles are
        // ordered. Under `cargo test` (debug) the serve loop's internal
        // debug_assert additionally checks the simulated clock never
        // runs backwards across every one of these random schedules.
        let templates = [serve_template(local_ms as f64 / 1000.0)];
        let cfg = ServeConfig {
            clients,
            think_seconds: think_ms as f64 / 1000.0,
            max_batch,
            admit_cap,
            duration_seconds: 5.0,
            seed,
            concurrency,
            adaptive,
            slo_seconds: slo_ms.map(|ms| ms as f64 / 1000.0),
        };
        let r = serve(&templates, 88.0, &XeonRack::rack_42u(), &cfg);
        prop_assert_eq!(
            r.admitted, r.completed + r.backlog,
            "arrivals must conserve: admitted {} vs completed {} + backlog {}",
            r.admitted, r.completed, r.backlog
        );
        prop_assert!((0.0..=1.0).contains(&r.slo_attainment));
        prop_assert!(r.p50 <= r.p95 && r.p95 <= r.p99);
        prop_assert!(r.mean_batch <= max_batch as f64);
    }

    #[test]
    fn skew_report_invariants_hold_for_any_row_counts(
        rows in proptest::collection::vec(0usize..100_000, 1..64),
    ) {
        let r = SkewReport::from_rows(&rows);
        prop_assert_eq!(r.max_rows, rows.iter().copied().max().unwrap());
        prop_assert!((0.0..=1.0).contains(&r.gini), "Gini out of range: {}", r.gini);
        prop_assert!(r.imbalance >= 1.0 - 1e-12, "max/mean below 1: {}", r.imbalance);
        prop_assert!(r.cv >= 0.0);
        let total: usize = rows.iter().sum();
        if total > 0 {
            prop_assert!((r.mean_rows * rows.len() as f64 - total as f64).abs() < 1e-6);
        }
    }
}

#[test]
fn all_queries_match_single_node_on_one_randomish_db() {
    let db = tpch::generate(600, 7);
    let policy = ShardPolicy::hash(6);
    let mut cluster = Cluster::new(db, &policy, ClusterConfig::prototype_slice(6, 10_000));
    for r in cluster.run_all() {
        assert!(r.matches_single(), "{} diverged from single-node", r.id.name());
    }
}

proptest! {
    /// Rack-aware chained declustering must spread every shard's
    /// replica chain over `min(k, racks)` distinct failure domains —
    /// the guarantee that lets a whole rack die without losing data
    /// (for k >= 2) — while keeping owners distinct and the primary on
    /// the shard's own node.
    #[test]
    fn rack_aware_placement_spans_min_k_racks(
        racks in 1usize..6,
        per_rack in 1usize..6,
        k_seed in 1usize..36,
    ) {
        let nodes = racks * per_rack;
        let k = (k_seed - 1) % nodes + 1;
        let p = Placement::rack_aware(nodes, racks, k);
        for s in 0..nodes {
            let owners = p.owners(s);
            prop_assert_eq!(owners.len(), k);
            prop_assert_eq!(owners[0], s, "primary must be the shard's own node");
            prop_assert_eq!(p.primary(s), s);
            let mut distinct = owners.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), k, "replicas must land on distinct nodes");
            prop_assert_eq!(
                p.spanned_racks(s),
                k.min(racks),
                "shard {} replicas must span min(k, racks) failure domains", s
            );
        }
    }

    /// With one rack the rack-aware chain is exactly the classic flat
    /// chained-declustering ring — the bit-identity anchor for the
    /// committed single-rack baselines.
    #[test]
    fn rack_aware_collapses_to_flat_ring_at_one_rack(
        nodes in 1usize..16,
        k_seed in 1usize..16,
    ) {
        let k = (k_seed - 1) % nodes + 1;
        let flat = Placement::new(nodes, k);
        let one_rack = Placement::rack_aware(nodes, 1, k);
        for s in 0..nodes {
            prop_assert_eq!(flat.owners(s), one_rack.owners(s));
            prop_assert_eq!(flat.gather_order(s, s % nodes), one_rack.gather_order(s, s % nodes));
        }
    }

    /// A gather landing on `dst` must try every replica in `dst`'s own
    /// rack (2 hops) before any cross-rack replica (4 hops), preserving
    /// chain order within each group — a stable partition of `owners`.
    #[test]
    fn gather_order_prefers_rack_local_replicas(
        racks in 1usize..6,
        per_rack in 1usize..6,
        k_seed in 1usize..36,
        dst_seed in 0usize..36,
    ) {
        let nodes = racks * per_rack;
        let k = (k_seed - 1) % nodes + 1;
        let dst = dst_seed % nodes;
        let p = Placement::rack_aware(nodes, racks, k);
        let dst_rack = p.rack_of(dst);
        for s in 0..nodes {
            let owners = p.owners(s);
            let order = p.gather_order(s, dst);
            let mut sorted_owners = owners.clone();
            let mut sorted_order = order.clone();
            sorted_owners.sort_unstable();
            sorted_order.sort_unstable();
            prop_assert_eq!(sorted_owners, sorted_order, "gather order must permute owners");
            // Rack-local prefix, then cross-rack: never a cross-rack
            // owner before a rack-local one.
            let first_remote = order.iter().position(|&o| p.rack_of(o) != dst_rack);
            if let Some(i) = first_remote {
                for &o in &order[i..] {
                    prop_assert!(
                        p.rack_of(o) != dst_rack,
                        "rack-local replica ordered after a cross-rack one"
                    );
                }
            }
            // Stable within each group: chain (failover-preference)
            // order preserved among locals and among remotes.
            let locals: Vec<usize> =
                order.iter().copied().filter(|&o| p.rack_of(o) == dst_rack).collect();
            let chain_locals: Vec<usize> =
                owners.iter().copied().filter(|&o| p.rack_of(o) == dst_rack).collect();
            prop_assert_eq!(locals, chain_locals);
            let remotes: Vec<usize> =
                order.iter().copied().filter(|&o| p.rack_of(o) != dst_rack).collect();
            let chain_remotes: Vec<usize> =
                owners.iter().copied().filter(|&o| p.rack_of(o) != dst_rack).collect();
            prop_assert_eq!(remotes, chain_remotes);
        }
    }

    /// `shards_on` is the exact inverse of `owners`: node n stores
    /// shard s iff n appears in s's replica chain, and every node
    /// stores exactly k shards (the chain is a permutation per step).
    #[test]
    fn shards_on_inverts_owners(
        racks in 1usize..6,
        per_rack in 1usize..6,
        k_seed in 1usize..36,
    ) {
        let nodes = racks * per_rack;
        let k = (k_seed - 1) % nodes + 1;
        let p = Placement::rack_aware(nodes, racks, k);
        for node in 0..nodes {
            let stored = p.shards_on(node);
            prop_assert_eq!(stored.len(), k, "storage must balance: k shards per node");
            for s in 0..nodes {
                prop_assert_eq!(
                    stored.contains(&s),
                    p.owners(s).contains(&node),
                    "shards_on({}) disagrees with owners({})", node, s
                );
            }
        }
    }
}
