//! Concurrent serving pipeline suite: the event-driven engine must
//! reproduce the PR 2 scalar serve loop bit for bit at `concurrency=1`,
//! show real fabric interference between concurrent shuffle-heavy
//! queries, and recover most of the straggler-free QPS via speculative
//! re-execution — all deterministically.

use dpu_repro::cluster::{
    serve, serve_pipeline, Cluster, ClusterConfig, ClusterQueryCost, FaultPlan, NodeCost, QueryId,
    ServeConfig, ShardPolicy, Speculation, Template,
};
use dpu_repro::sql::tpch;
use dpu_repro::xeon::XeonRack;

const NODES: usize = 8;

fn cluster(k: usize) -> Cluster {
    let db = tpch::generate(500, 13);
    let cfg = ClusterConfig::prototype_slice(NODES, 10_000).with_replicas(k);
    Cluster::new(db, &ShardPolicy::hash(NODES), cfg)
}

/// Serve templates from running the full suite on `c`, asserting every
/// distributed result stays bit-identical to single-node execution.
fn templates_for(c: &mut Cluster) -> Vec<Template> {
    QueryId::ALL
        .iter()
        .map(|&id| {
            let q = c.try_run_at(id, 0.0).expect("suite must run");
            assert!(q.matches_single(), "{} diverged from single-node", id.name());
            Template {
                name: q.id.name(),
                cost: q.cost.clone(),
                xeon_seconds: q.single_cost.xeon.seconds,
            }
        })
        .collect()
}

/// The synthetic template the PR 2 serve unit tests used, reproduced
/// here verbatim so the pinned numbers below mean the same thing.
fn template(name: &'static str, local: f64, xeon: f64) -> Template {
    Template {
        name,
        cost: ClusterQueryCost {
            per_node: vec![NodeCost { mem_seconds: local, cpu_seconds: local / 4.0 }; 8],
            local_seconds: local,
            fabric_seconds: local / 10.0,
            merge_seconds: local / 100.0,
            fabric_bytes: 1 << 20,
            failovers: 0,
            speculations: 0,
        },
        xeon_seconds: xeon,
    }
}

#[test]
fn concurrency_one_reproduces_the_scalar_serve_loop_bitwise() {
    // Numbers pinned from the PR 2 scalar `server_free_at` loop. The
    // default config is concurrency=1 / adaptive off / no SLO, so the
    // event-driven engine must reproduce them exactly — RNG draw order,
    // event ordering, and admission retry semantics included.
    let rack = XeonRack::rack_42u();

    // Light load: two fast templates, no saturation.
    let light = vec![template("Q1", 0.010, 0.5), template("Q6", 0.005, 0.3)];
    let cfg = ServeConfig { duration_seconds: 30.0, ..ServeConfig::default() };
    let r = serve(&light, 88.0, &rack, &cfg);
    assert_eq!(r.completed, 4507);
    assert_eq!(r.rejected, 0);
    assert_eq!(r.qps, 150.233_333_333_333_32);
    assert_eq!(r.p50, 0.015_279_447_597_993_823);
    assert_eq!(r.p99, 0.028_998_515_788_202_894);
    assert_eq!(r.mean_batch, 1.493_373_094_764_744_8);

    // Saturation: one slow template, tiny admission queue, rejections.
    let heavy = vec![template("Q5", 0.5, 2.0)];
    let cfg = ServeConfig {
        clients: 128,
        think_seconds: 0.0,
        admit_cap: 8,
        duration_seconds: 20.0,
        ..ServeConfig::default()
    };
    let r = serve(&heavy, 88.0, &rack, &cfg);
    assert_eq!(r.completed, 113);
    assert_eq!(r.rejected, 1792);
    assert_eq!(r.qps, 5.65);
    assert_eq!(r.p50, 2.879_999_999_999_999);
    assert_eq!(r.p99, 2.880_000_000_000_002_6);
    assert_eq!(r.mean_batch, 7.533_333_333_333_333);
}

#[test]
fn concurrent_q10_mix_pays_for_fabric_contention() {
    // A Q10-only mix with zero think time at concurrency 8: the initial
    // arrivals dispatch together, so the in-flight batches reach their
    // shuffle phases simultaneously and must queue on the shared
    // switch — per-query fabric time strictly above the isolated cost.
    let mut c = cluster(1);
    let q10 = c.try_run_at(QueryId::Q10, 0.0).expect("healthy run");
    assert!(q10.matches_single());
    let t = Template {
        name: "Q10",
        cost: q10.cost.clone(),
        xeon_seconds: q10.single_cost.xeon.seconds,
    };
    let rack = XeonRack::rack_42u();
    let cfg = ServeConfig {
        clients: 32,
        think_seconds: 0.0,
        max_batch: 4,
        duration_seconds: 20.0,
        concurrency: 8,
        ..ServeConfig::default()
    };
    let fabric = c.cfg().fabric.clone();
    let shared = serve_pipeline(
        std::slice::from_ref(&t),
        c.watts(),
        &rack,
        &cfg,
        None,
        Some((&fabric, NODES)),
    );
    assert!(
        shared.mean_fabric_seconds > shared.mean_fabric_isolated_seconds,
        "8 concurrent Q10 shuffles must contend on the switch: shared {} vs isolated {}",
        shared.mean_fabric_seconds,
        shared.mean_fabric_isolated_seconds
    );

    // The same mix with one slot uncontended charges exactly isolated.
    let solo_cfg = ServeConfig { clients: 1, max_batch: 1, concurrency: 1, ..cfg };
    let solo = serve_pipeline(&[t], c.watts(), &rack, &solo_cfg, None, Some((&fabric, NODES)));
    assert!(
        (solo.mean_fabric_seconds - solo.mean_fabric_isolated_seconds).abs() < 1e-12,
        "uncontended shuffles must cost exactly the isolated time"
    );
}

#[test]
fn speculation_recovers_most_straggler_free_qps() {
    // One node computing at quarter speed for the whole horizon. Without
    // mitigation its shard gates every query (4× the local phase); with
    // deadline-based speculation the backup replica caps the damage.
    let rack = XeonRack::rack_42u();
    let scfg = ServeConfig {
        clients: 32,
        think_seconds: 0.2,
        max_batch: 16,
        duration_seconds: 30.0,
        ..ServeConfig::default()
    };
    let straggle = FaultPlan::none().straggle(3, 0.0, 1e9, 0.25);

    let mut healthy = cluster(2);
    let healthy_qps = serve(&templates_for(&mut healthy), healthy.watts(), &rack, &scfg).qps;

    let mut slow = cluster(2);
    slow.set_faults(straggle.clone());
    let straggled_qps = serve(&templates_for(&mut slow), slow.watts(), &rack, &scfg).qps;

    let mut spec = cluster(2);
    spec.set_faults(straggle);
    spec.set_speculation(Some(Speculation::default()));
    // templates_for asserts bit-identical results under speculation.
    let spec_templates = templates_for(&mut spec);
    assert!(
        spec_templates.iter().any(|t| t.cost.speculations > 0),
        "the 4× straggler must trip the deadline"
    );
    let spec_qps = serve(&spec_templates, spec.watts(), &rack, &scfg).qps;

    assert!(
        spec_qps > straggled_qps,
        "speculation must beat the unmitigated straggler: {spec_qps} vs {straggled_qps}"
    );
    assert!(
        spec_qps >= 0.70 * healthy_qps,
        "speculation must recover ≥70% of straggler-free QPS: {spec_qps} vs healthy {healthy_qps} \
         (unmitigated {straggled_qps})"
    );
}

#[test]
fn adaptive_batching_weakly_dominates_fixed_depths_at_high_load() {
    // At the two highest offered loads the admission queue stays past
    // the pressure threshold, so the controller batches at the full cap
    // and must match or beat every fixed depth on SLO attainment. (The
    // committed BENCH_rack_serve.json pins the same property at bench
    // scale; this guards it at test scale.)
    let mut c = cluster(1);
    let templates = templates_for(&mut c);
    let rack = XeonRack::rack_42u();
    for clients in [64usize, 128] {
        let mut best_fixed = 0.0f64;
        for mb in [1usize, 4, 8, 16] {
            let cfg = ServeConfig {
                clients,
                max_batch: mb,
                slo_seconds: Some(1.5),
                ..ServeConfig::default()
            };
            best_fixed = best_fixed.max(serve(&templates, c.watts(), &rack, &cfg).slo_attainment);
        }
        let cfg = ServeConfig {
            clients,
            max_batch: 16,
            adaptive: true,
            slo_seconds: Some(1.5),
            ..ServeConfig::default()
        };
        let adaptive = serve(&templates, c.watts(), &rack, &cfg).slo_attainment;
        assert!(
            adaptive >= best_fixed,
            "adaptive must weakly dominate fixed batching at {clients} clients: \
             {adaptive} vs {best_fixed}"
        );
    }
}

#[test]
fn pipeline_is_deterministic_across_all_features() {
    // Concurrency + adaptive + SLO + shared fabric together: two
    // identical invocations must agree on every reported number.
    let mut c = cluster(2);
    let templates = templates_for(&mut c);
    let rack = XeonRack::rack_42u();
    let cfg = ServeConfig {
        clients: 48,
        think_seconds: 0.05,
        max_batch: 16,
        duration_seconds: 20.0,
        concurrency: 3,
        adaptive: true,
        slo_seconds: Some(1.5),
        ..ServeConfig::default()
    };
    let fabric = c.cfg().fabric.clone();
    let a = serve_pipeline(&templates, c.watts(), &rack, &cfg, None, Some((&fabric, NODES)));
    let b = serve_pipeline(&templates, c.watts(), &rack, &cfg, None, Some((&fabric, NODES)));
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(a.qps, b.qps);
    assert_eq!(a.p99, b.p99);
    assert_eq!(a.slo_attainment, b.slo_attainment);
    assert_eq!(a.mean_fabric_seconds, b.mean_fabric_seconds);
    assert_eq!(a.admitted, a.completed + a.backlog);
}

#[test]
fn thread_count_never_changes_bench_relevant_output() {
    // The full rack_tpch flow — parallel datagen, distributed suite,
    // closed-loop serving — run with the work-stealing pool pinned to
    // one worker and then to four. Every number a BENCH file is derived
    // from must be bit-identical: host threads may only change how fast
    // the simulator runs, never what it computes. This is the only test
    // allowed to touch the process-global thread count; everything else
    // builds explicit `Pool`s so this global stays race-free.
    use dpu_repro::cluster::QueryOutput;
    use dpu_repro::pool::{global_threads, set_global_threads};

    #[allow(clippy::type_complexity)]
    fn flow() -> (Vec<(QueryOutput, ClusterQueryCost)>, Vec<f64>) {
        let db = tpch::generate_parallel(500, 13);
        let cfg = ClusterConfig::prototype_slice(NODES, 10_000).with_replicas(2);
        let mut c = Cluster::new(db, &ShardPolicy::hash(NODES), cfg);
        let runs = c.run_all();
        let templates: Vec<Template> = runs
            .iter()
            .map(|q| {
                assert!(q.matches_single(), "{} diverged from single-node", q.id.name());
                Template {
                    name: q.id.name(),
                    cost: q.cost.clone(),
                    xeon_seconds: q.single_cost.xeon.seconds,
                }
            })
            .collect();
        let r = serve(&templates, c.watts(), &XeonRack::rack_42u(), &ServeConfig::default());
        (
            runs.into_iter().map(|q| (q.output, q.cost)).collect(),
            vec![r.qps, r.p50, r.p95, r.p99, r.mean_latency, r.mean_batch, r.completed as f64],
        )
    }

    let prior = global_threads();
    set_global_threads(1);
    let sequential = flow();
    set_global_threads(4);
    let parallel = flow();
    set_global_threads(prior);
    assert_eq!(sequential, parallel, "pool width changed a bench-relevant number");
}
