//! Larger-scale TPC-H exactness, sized for the nightly `tpch-scale` CI
//! job rather than the per-push suite. The big test is `#[ignore]`d so
//! `cargo test` stays fast; nightly runs it with `-- --ignored` and
//! then byte-diffs the regression numbers in `BENCH_rack_tpch.json`.

use dpu_repro::cluster::{serve, Cluster, ClusterConfig, QueryId, ServeConfig, ShardPolicy};
use dpu_repro::sql::tpch;
use dpu_repro::xeon::XeonRack;

const NODES: usize = 8;
const SCALE: u64 = 30_000;

/// Generates at `orders_n`, checks chunked-vs-sequential datagen
/// equality, runs the full suite distributed over 8 nodes, and asserts
/// every result bit-identical to single-node execution.
fn exactness_at(orders_n: usize, seed: u64) {
    let db = tpch::generate(orders_n, seed);
    assert_eq!(
        db,
        tpch::generate_parallel(orders_n, seed),
        "chunked datagen diverged at orders_n={orders_n}"
    );
    let cfg = ClusterConfig::prototype_slice(NODES, SCALE).with_replicas(2);
    let mut c = Cluster::new(db, &ShardPolicy::hash(NODES), cfg);
    let runs = c.run_all();
    assert_eq!(runs.len(), QueryId::ALL.len());
    for q in &runs {
        assert!(
            q.matches_single(),
            "{} diverged from single-node at orders_n={orders_n}",
            q.id.name()
        );
    }
    // Serving sanity on the same templates the bench binary derives:
    // the closed-loop simulation must make progress at this scale.
    let templates: Vec<_> = runs
        .iter()
        .map(|q| dpu_repro::cluster::Template {
            name: q.id.name(),
            cost: q.cost.clone(),
            xeon_seconds: q.single_cost.xeon.seconds,
        })
        .collect();
    let report = serve(&templates, c.watts(), &XeonRack::rack_42u(), &ServeConfig::default());
    assert!(report.qps > 0.0, "serving must complete queries at orders_n={orders_n}");
    assert!(report.completed > 0);
}

#[test]
fn distributed_suite_is_exact_at_smoke_scale() {
    exactness_at(2_000, 2026);
}

#[test]
#[ignore = "large; run by the nightly tpch-scale CI job with -- --ignored"]
fn distributed_suite_is_exact_at_nightly_scale() {
    exactness_at(20_000, 2026);
}
