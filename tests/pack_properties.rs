//! Differential property suite for FOR/bit-packed columns (`DPU_PACK`).
//!
//! The compressed-execution contract mirrors `DPU_VECTOR`'s: packing is
//! *pure performance*. For every bit width (1/2/4/8/16/32/64), every
//! chunk-boundary row count, signed-extreme values, all-constant
//! chunks, and every kernel, the packed paths — encoded-domain filter
//! bands and lane-batch unpacking for partition / group-by / join /
//! top-k / sort / expressions — must be **bit-identical** to flat
//! execution: same selection words, same row order, same values.
//!
//! Tests pass explicit [`Kernel`] and [`Pack`] arguments instead of
//! flipping the process-wide knob resolutions, so the suite is safe
//! under the harness's concurrent test execution. The one exception is
//! [`entry_apis_honor_the_resolved_knobs`], which deliberately goes
//! through the knob-resolving entry points so the CI matrix
//! (`DPU_PACK` × `DPU_VECTOR` × `DPU_THREADS`) exercises every
//! resolution against the same flat scalar reference.

use proptest::prelude::*;

use dpu_repro::sql::{
    partition_row_ids_with, sort_indices, sort_indices_multi, sort_indices_multi_packed_with,
    sort_indices_packed_with, top_k, top_k_packed_with, AggFunc, Column, CompareOp, Expr,
    FilterSpec, GroupBySpec, HashJoin, Kernel, Pack, PackedColumn, Table,
};

/// Widens a tagged raw value into a key distribution that exercises
/// extremes (`i64::MIN`, `i64::MAX`), small dense ranges, and
/// full-domain values.
fn shape_value(raw: i64, tag: u8) -> i64 {
    match tag {
        0 => i64::MIN,
        1 => i64::MAX,
        2..=4 => raw.rem_euclid(16),   // dense: many duplicate keys
        5..=6 => raw.rem_euclid(4096), // medium cardinality
        _ => raw,                      // full domain
    }
}

/// A value-column strategy over the shaped distribution.
fn values(max_len: usize) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec((any::<i64>(), any::<u8>()), 0..max_len)
        .prop_map(|pairs| pairs.into_iter().map(|(raw, tag)| shape_value(raw, tag % 8)).collect())
}

/// Values confined to a random frame plus a width-targeted range, so
/// every packed bit width (1, 2, 4, 8, 16, 32, 64) gets drawn —
/// including frames near the signed extremes where the FOR delta wraps.
fn framed_values(max_len: usize) -> impl Strategy<Value = Vec<i64>> {
    (any::<i64>(), 0u32..=6, proptest::collection::vec(any::<u64>(), 0..max_len)).prop_map(
        |(base, wexp, raws)| {
            let bits = 1u32 << wexp;
            let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            raws.into_iter().map(|r| base.wrapping_add((r & mask) as i64)).collect()
        },
    )
}

/// A comparison-operator strategy covering every `CompareOp` arm plus
/// always-true and always-false bands, with band edges drawn near the
/// column values so partially-overlapping bands are common.
fn compare_op() -> impl Strategy<Value = CompareOp> {
    (any::<i64>(), any::<i64>(), 0u8..8).prop_map(|(a, b, arm)| {
        let (lo, hi) = (a.min(b), a.max(b));
        match arm {
            0 => CompareOp::Between(lo, hi),
            1 => CompareOp::Eq(a),
            // Guard the band() ±1 arithmetic against i64 overflow.
            2 => CompareOp::Lt(a.max(i64::MIN + 1)),
            3 => CompareOp::Le(a),
            4 => CompareOp::Gt(a.min(i64::MAX - 1)),
            5 => CompareOp::Ge(a),
            6 => CompareOp::Between(i64::MIN, i64::MAX), // all match
            _ => CompareOp::Between(1, 0),               // empty band: none match
        }
    })
}

/// A column with packing **forced** (bypassing the payoff rule), so the
/// packed code paths run even for distributions where encoding would
/// not pay.
fn force_packed(name: &str, data: &[i64]) -> Column {
    Column {
        name: name.into(),
        width: 8,
        data: data.to_vec(),
        packed: Some(PackedColumn::encode(data)),
    }
}

proptest! {
    #[test]
    fn packed_roundtrip_is_exact(data in framed_values(3000)) {
        let p = PackedColumn::encode(&data);
        prop_assert_eq!(p.len(), data.len());
        prop_assert_eq!(p.unpack(), data.clone());
        // Sampled point lookups take the same per-chunk shift/mask path.
        for (i, &v) in data.iter().enumerate().step_by(97) {
            prop_assert_eq!(p.get(i), v);
        }
    }

    #[test]
    fn packed_filter_is_word_identical_to_flat(
        data in framed_values(3000),
        op in compare_op(),
    ) {
        let t = Table::new(vec![force_packed("x", &data)]);
        let spec = FilterSpec::new("x", op);
        let flat = spec.apply_packed_with(&t, Kernel::Scalar, Pack::Off);
        for kernel in [Kernel::Scalar, Kernel::Swar, Kernel::HwCrc] {
            let packed = spec.apply_packed_with(&t, kernel, Pack::On);
            // Word-for-word equality, so tail-lane masking bugs cannot
            // hide behind popcounts.
            prop_assert_eq!(&flat, &packed, "kernel {:?}", kernel);
            prop_assert_eq!(flat.words(), packed.words(), "kernel {:?}", kernel);
        }
    }

    #[test]
    fn packed_filter_handles_extreme_value_mixes(
        data in values(500),
        op in compare_op(),
    ) {
        let t = Table::new(vec![force_packed("x", &data)]);
        let spec = FilterSpec::new("x", op);
        let flat = spec.apply_packed_with(&t, Kernel::Scalar, Pack::Off);
        let packed = spec.apply_packed_with(&t, Kernel::Swar, Pack::On);
        prop_assert_eq!(flat.words(), packed.words());
    }

    #[test]
    fn decode_for_and_values_reproduce_flat_data(data in framed_values(2500)) {
        let t = Table::new(vec![force_packed("x", &data)]);
        let col = &t.columns[0];
        prop_assert_eq!(col.values(Pack::On).into_owned(), data.clone());
        prop_assert_eq!(col.values(Pack::Off).into_owned(), data.clone());
        let d = t.decode_for(&["x"], Pack::On).expect("forced-packed column");
        prop_assert_eq!(&d.columns[0].data, &data);
        prop_assert!(d.columns[0].packed.is_none(), "decoded tables are flat");
        prop_assert!(t.decode_for(&["x"], Pack::Off).is_none(), "pack off decodes nothing");
    }

    #[test]
    fn packed_partition_matches_flat(
        keys in framed_values(1500),
        fanout in 1u64..40,
    ) {
        let c = force_packed("k", &keys);
        let unpacked = c.values(Pack::On);
        for kernel in [Kernel::Scalar, Kernel::Swar, Kernel::HwCrc] {
            prop_assert_eq!(
                partition_row_ids_with(&keys, 0, fanout, kernel),
                partition_row_ids_with(&unpacked, 0, fanout, kernel),
                "kernel {:?}", kernel
            );
        }
    }

    #[test]
    fn packed_group_by_matches_flat(keys in framed_values(1500)) {
        let vals: Vec<i64> =
            keys.iter().enumerate().map(|(i, &k)| (k % 1000).wrapping_mul(3) + i as i64).collect();
        let t = Table::new(vec![force_packed("g", &keys), force_packed("v", &vals)]);
        let spec = GroupBySpec {
            group_cols: vec!["g".into()],
            aggs: vec![
                ("cnt".into(), AggFunc::Count),
                ("s".into(), AggFunc::Sum("v".into())),
                ("lo".into(), AggFunc::Min("v".into())),
                ("hi".into(), AggFunc::Max("v".into())),
            ],
        };
        let flat = spec.execute_seq(&t, None);
        let cols = spec.columns_read();
        let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let decoded = t.decode_for(&refs, Pack::On).expect("forced-packed columns");
        prop_assert_eq!(&flat, &spec.execute_seq(&decoded, None));
        prop_assert_eq!(&flat, &spec.execute_vector(&decoded, None));
    }

    #[test]
    fn packed_top_k_and_sort_match_flat(
        data in framed_values(1200),
        k in 1usize..40,
        workers in 1usize..5,
    ) {
        let tie_break: Vec<i64> = data.iter().map(|&v| v.rem_euclid(7)).collect();
        let t = Table::new(vec![force_packed("a", &data), force_packed("b", &tie_break)]);
        for kernel in [Kernel::Scalar, Kernel::Swar] {
            prop_assert_eq!(
                top_k_packed_with(&t, "a", k, workers, None, kernel, Pack::Off),
                top_k_packed_with(&t, "a", k, workers, None, kernel, Pack::On),
                "top-k kernel {:?}", kernel
            );
            prop_assert_eq!(
                sort_indices_packed_with(&t, "a", workers, None, kernel, Pack::Off),
                sort_indices_packed_with(&t, "a", workers, None, kernel, Pack::On),
                "sort kernel {:?}", kernel
            );
            prop_assert_eq!(
                sort_indices_multi_packed_with(&t, &["a", "b"], workers, None, kernel, Pack::Off),
                sort_indices_multi_packed_with(&t, &["a", "b"], workers, None, kernel, Pack::On),
                "multi-sort kernel {:?}", kernel
            );
        }
    }

    #[test]
    fn packed_expression_eval_matches_flat(data in framed_values(1000)) {
        // Divisors shaped strictly positive: division by zero panics (by
        // contract) and `i64::MIN / -1` would trap in both arms.
        let divisor: Vec<i64> = data.iter().map(|&v| v.rem_euclid(1000) + 1).collect();
        let t = Table::new(vec![force_packed("x", &data), force_packed("d", &divisor)]);
        let e = Expr::Clamp(
            Box::new(
                (Expr::col("x") * Expr::lit(3) + Expr::col("x") - Expr::lit(7)) / Expr::col("d"),
            ),
            -(1 << 40),
            1 << 40,
        );
        let flat = e.eval_packed_with(&t, Kernel::Scalar, Pack::Off);
        for kernel in [Kernel::Scalar, Kernel::Swar] {
            prop_assert_eq!(&flat, &e.eval_packed_with(&t, kernel, Pack::On), "kernel {:?}", kernel);
        }
    }

    #[test]
    fn packed_join_matches_flat(
        bkeys in framed_values(400),
        pkeys in framed_values(400),
        fanout in 1u64..10,
    ) {
        let bv: Vec<i64> = bkeys.iter().map(|&k| k ^ 0x5A5A).collect();
        let pv: Vec<i64> = pkeys.iter().map(|&k| k.wrapping_add(17)).collect();
        let build = Table::new(vec![force_packed("k", &bkeys), force_packed("bv", &bv)]);
        let probe = Table::new(vec![force_packed("k", &pkeys), force_packed("pv", &pv)]);
        let join = HashJoin {
            build_key: "k".into(),
            probe_key: "k".into(),
            build_cols: vec!["bv".into()],
            probe_cols: vec!["pv".into(), "k".into()],
        };
        let (flat, flat_max) = join.execute_seq_with(&build, &probe, fanout, Kernel::Scalar);
        // The packed entry decodes each side's referenced columns, then
        // runs the flat kernels — reproduce that wiring explicitly.
        let bd = build.decode_for(&["k", "bv"], Pack::On).expect("forced-packed build");
        let pd = probe.decode_for(&["k", "pv"], Pack::On).expect("forced-packed probe");
        let (packed, packed_max) = join.execute_seq_with(&bd, &pd, fanout, Kernel::Scalar);
        prop_assert_eq!(&flat, &packed);
        prop_assert_eq!(flat_max, packed_max);
    }
}

/// Chunk-boundary row counts: every length straddling the 1024-row pack
/// chunk and the 64-row selection word must mask identically, for every
/// predicate shape.
#[test]
fn packed_filter_is_exact_at_chunk_boundaries() {
    for len in [0usize, 1, 63, 64, 65, 127, 128, 1023, 1024, 1025, 2047, 2048, 2049] {
        let data: Vec<i64> = (0..len as i64).map(|i| (i * 37) % 50 - 25).collect();
        let t = Table::new(vec![force_packed("x", &data)]);
        for op in [
            CompareOp::Between(-10, 10),
            CompareOp::Between(i64::MIN, i64::MAX), // all match
            CompareOp::Between(1, 0),               // none match
            CompareOp::Eq(0),
            CompareOp::Ge(0),
            CompareOp::Lt(-25), // below every chunk frame: zone-map zeros
        ] {
            let spec = FilterSpec::new("x", op);
            let flat = spec.apply_packed_with(&t, Kernel::Scalar, Pack::Off);
            for kernel in [Kernel::Scalar, Kernel::Swar] {
                let packed = spec.apply_packed_with(&t, kernel, Pack::On);
                assert_eq!(flat.words(), packed.words(), "len={len} op={op:?} kernel={kernel:?}");
            }
        }
    }
}

/// Signed-extreme frames and all-constant chunks: `i64::MIN`/`MAX`
/// values wrap the FOR delta across the full unsigned domain, and
/// constant chunks (range 0) must short-circuit on the zone map alone.
#[test]
fn packed_extremes_and_constant_chunks_are_exact() {
    let mut data = vec![i64::MIN; 1024]; // all-constant chunk, extreme frame
    data.extend(std::iter::repeat_n(i64::MAX, 1024)); // another constant chunk
                                                      // A full-range chunk: deltas span the whole unsigned domain.
    data.extend((0..1024).map(|i| if i % 2 == 0 { i64::MIN } else { i64::MAX }));
    data.extend(std::iter::repeat_n(7, 1024)); // small constant chunk
    data.extend((0..100).map(|i| i - 50)); // partial tail chunk
    let p = PackedColumn::encode(&data);
    assert_eq!(p.unpack(), data);

    let t = Table::new(vec![force_packed("x", &data)]);
    for op in [
        CompareOp::Eq(i64::MIN),
        CompareOp::Eq(i64::MAX),
        CompareOp::Eq(7),
        CompareOp::Between(i64::MIN, i64::MAX),
        CompareOp::Between(0, 0),
        CompareOp::Ge(0),
        CompareOp::Le(-1),
    ] {
        let spec = FilterSpec::new("x", op);
        let flat = spec.apply_packed_with(&t, Kernel::Scalar, Pack::Off);
        for kernel in [Kernel::Scalar, Kernel::Swar] {
            let packed = spec.apply_packed_with(&t, kernel, Pack::On);
            assert_eq!(flat.words(), packed.words(), "op={op:?} kernel={kernel:?}");
        }
    }
}

/// The payoff rule: `Column::encode_packed` keeps the packed form only
/// when it is strictly smaller than the flat data, and never packs an
/// already-packed or empty column twice.
#[test]
fn encode_packed_keeps_only_paying_columns() {
    // Full-domain 64-bit noise: 64-bit deltas plus headers cannot beat
    // the flat 8-byte width, so the column must stay flat.
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let noise: Vec<i64> = (0..5000)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state as i64
        })
        .collect();
    let mut wide = Column::i64("noise", noise);
    wide.encode_packed();
    assert!(wide.packed.is_none(), "full-domain noise must fall back to flat");
    assert_eq!(wide.resident_bytes(), wide.bytes());

    // A small-domain column packs and shrinks.
    let mut small = Column::i64("small", (0..5000).map(|i| i % 50).collect());
    small.encode_packed();
    let p = small.packed.as_ref().expect("small domain must pack");
    assert!(small.resident_bytes() < small.bytes());
    assert_eq!(p.unpack(), small.data);
    // Idempotent: a second encode leaves the representation untouched.
    let before = small.resident_bytes();
    small.encode_packed();
    assert_eq!(small.resident_bytes(), before);

    // An empty column never packs.
    let mut empty = Column::i64("empty", vec![]);
    empty.encode_packed();
    assert!(empty.packed.is_none());
}

/// Goes through the knob-resolving entry points (`apply`, `execute`,
/// `eval`, `top_k`, `sort_indices`, `sort_indices_multi`) on an encoded
/// table, so the CI matrix (`DPU_PACK` × `DPU_VECTOR` × `DPU_THREADS`)
/// checks every resolution against the explicit flat scalar reference.
#[test]
fn entry_apis_honor_the_resolved_knobs() {
    let n = 5000usize;
    let keys: Vec<i64> = (0..n as i64).map(|i| (i * 131) % 3000 - 1500).collect();
    let vals: Vec<i64> = (0..n as i64).map(|i| (i * 17) % 10_000).collect();
    let mut t = Table::new(vec![Column::i64("x", keys), Column::i64("v", vals)]);
    t.encode_packed();
    assert!(t.columns.iter().all(|c| c.packed.is_some()), "both columns should pay");

    let spec = FilterSpec::new("x", CompareOp::Between(-500, 900));
    assert_eq!(
        spec.apply(&t).words(),
        spec.apply_packed_with(&t, Kernel::Scalar, Pack::Off).words()
    );

    let g = GroupBySpec {
        group_cols: vec!["x".into()],
        aggs: vec![("cnt".into(), AggFunc::Count), ("s".into(), AggFunc::Sum("v".into()))],
    };
    assert_eq!(g.execute(&t, None), g.execute_seq(&t, None));

    let e = Expr::col("v") * (Expr::lit(100) - Expr::col("x"));
    assert_eq!(e.eval(&t), e.eval_packed_with(&t, Kernel::Scalar, Pack::Off));

    assert_eq!(
        top_k(&t, "v", 50, 4),
        top_k_packed_with(&t, "v", 50, 4, None, Kernel::Scalar, Pack::Off)
    );
    assert_eq!(
        sort_indices(&t, "x", 4),
        sort_indices_packed_with(&t, "x", 4, None, Kernel::Scalar, Pack::Off)
    );
    assert_eq!(
        sort_indices_multi(&t, &["x", "v"], 4),
        sort_indices_multi_packed_with(&t, &["x", "v"], 4, None, Kernel::Scalar, Pack::Off)
    );
}
