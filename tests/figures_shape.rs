//! Shape-target regression tests: quick versions of every figure's
//! headline claim, so `cargo test` guards the reproduction's conclusions.

use dpu_repro::xeon::{calibration::reported_gains, Xeon};

#[test]
fn fig02_ate_latency_ordering() {
    use dpu_repro::ate::{Ate, AteConfig, AteOp, AteRequest, AteTarget};
    use dpu_repro::mem::{Dmem, PhysMem};
    use dpu_repro::sim::Time;
    let mut phys = PhysMem::new(256);
    let mut dmems: Vec<Dmem> = (0..32).map(|_| Dmem::new(64)).collect();
    let mut t = |op, to| {
        let mut ate = Ate::new(AteConfig::default(), 32);
        ate.request(
            AteRequest { from: 0, to, target: AteTarget::Ddr(0), op },
            Time::ZERO,
            &mut phys,
            &mut dmems,
        )
        .finish
        .cycles()
    };
    let store_near = t(AteOp::Store(1), 1);
    let load_near = t(AteOp::Load, 1);
    let faa_near = t(AteOp::FetchAdd(1), 1);
    let load_far = t(AteOp::Load, 31);
    assert!(store_near < load_near && load_near <= faa_near);
    assert!(load_far > load_near, "inter-macro costs more");
    assert!(load_near < 100, "tens of cycles, not hundreds");
}

#[test]
fn fig05_power_breakdown_anchors() {
    use dpu_repro::soc::{DpuConfig, PowerBreakdown};
    let b = PowerBreakdown::for_config(&DpuConfig::nm40());
    assert!((b.total_watts() - 5.8).abs() < 0.01);
    assert!(b.fraction("leakage") > 0.365, "leakage {}", b.fraction("leakage"));
}

#[test]
fn fig14_all_gains_in_paper_band() {
    let xeon = Xeon::new();
    use dpu_repro::apps::{disparity, hll, json, simsearch, svm};
    use dpu_repro::isa::hash::HashKind;

    let checks: Vec<(&str, f64, f64, f64)> = vec![
        // (name, measured, paper, relative tolerance)
        ("svm", svm::gain(128 * 1024, 28, &xeon), reported_gains::SVM, 0.5),
        (
            "simsearch",
            {
                let c = simsearch::generate_corpus(500, 4000, 50, 3);
                simsearch::gain(&simsearch::InvertedIndex::build(&c), &xeon)
            },
            reported_gains::SIMSEARCH,
            0.2,
        ),
        ("hll", hll::gain(HashKind::Crc32, &xeon), reported_gains::HLL_CRC32, 0.2),
        ("json", json::gain(&json::generate_records(300, 4), &xeon), reported_gains::JSON, 0.35),
        ("disparity", disparity::gain(640, 480, 32, &xeon), reported_gains::DISPARITY, 0.25),
    ];
    for (name, got, paper, tol) in checks {
        assert!(
            (got - paper).abs() / paper <= tol,
            "{name}: measured {got:.2}× vs paper {paper:.1}× (tol {tol})"
        );
        assert!(got > 3.0 && got < 25.0, "{name} outside the paper's 3×–15× headline range: {got}");
    }
}

#[test]
fn fig14_groupby_gains() {
    use dpu_repro::sql::agg::GroupByPlan;
    use dpu_repro::sql::CostAcc;
    let xeon = Xeon::new();
    let gain = |ndv: u64| {
        let plan = GroupByPlan::plan(ndv, 16);
        let mut acc = CostAcc::new();
        acc.stream((1u64 << 30) * plan.dpu_bytes_factor(), (1u64 << 30) * plan.xeon_bytes_factor());
        acc.finish(&xeon).gain(&xeon)
    };
    let low = gain(10);
    let high = gain(2_000_000);
    assert!((low - reported_gains::GROUPBY_LOW_NDV).abs() < 0.3, "low NDV {low:.2}");
    assert!(high > low + 2.0, "high NDV must widen the gap: {high:.2}");
    assert!(
        (high - reported_gains::GROUPBY_HIGH_NDV).abs() / reported_gains::GROUPBY_HIGH_NDV < 0.25
    );
}

#[test]
fn fig15_filter_rate() {
    use dpu_repro::sql::measure_filter_kernel;
    let values: Vec<i32> = (0..4096).collect();
    let (m, _) = measure_filter_kernel(&values, 0, 2048);
    assert!((1.4..1.9).contains(&m.cycles_per_tuple()), "{}", m.cycles_per_tuple());
    assert!(m.tuples_per_sec() > 420.0e6, "{:.0} tuples/s", m.tuples_per_sec());
}

#[test]
fn fig16_geomean_near_15x() {
    use dpu_repro::sql::tpch;
    let xeon = Xeon::new();
    let db = tpch::generate(1500, 1);
    let (gains, geomean) = tpch::run_all(&db, &xeon, 100_000);
    assert!(gains.iter().all(|(_, g)| *g > 1.0));
    assert!(
        (10.0..22.0).contains(&geomean),
        "TPC-H geomean {geomean:.1} outside the band around 15×"
    );
}

#[test]
fn section_2_5_shrink_efficiency() {
    use dpu_repro::soc::DpuConfig;
    let a = DpuConfig::nm40();
    let b = DpuConfig::nm16();
    let ratio =
        (b.compute_proxy() / b.provisioned_watts) / (a.compute_proxy() / a.provisioned_watts);
    assert!((ratio - 2.5).abs() < 0.01, "16 nm shrink efficiency {ratio}");
}
