//! Property-based tests over core data structures and invariants.

use proptest::prelude::*;

use dpu_repro::dms::{ControlDescriptor, DataDescriptor, DescKind, Descriptor, EventCond};
use dpu_repro::fixed::Q10_22;
use dpu_repro::isa::hash::{crc32c_u64, murmur64};
use dpu_repro::isa::{encode, Inst, Reg};
use dpu_repro::sql::BitVec;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::of)
}

fn arb_kind() -> impl Strategy<Value = DescKind> {
    prop_oneof![
        Just(DescKind::DdrToDmem),
        Just(DescKind::DmemToDdr),
        Just(DescKind::DmsToDms),
        Just(DescKind::DmsToDmem),
        Just(DescKind::DmemToDms),
        Just(DescKind::DdrToDms),
        Just(DescKind::DmsToDdr),
    ]
}

proptest! {
    // --- DMS descriptor encoding (Table 2) ---

    #[test]
    fn data_descriptor_roundtrips(
        kind in arb_kind(),
        ddr_addr in 0u64..(1 << 36),
        dmem_addr in any::<u16>(),
        rows in any::<u16>(),
        width_log in 0u8..4,
        gather in any::<bool>(),
        scatter in any::<bool>(),
        rle in any::<bool>(),
        src_inc in any::<bool>(),
        dst_inc in any::<bool>(),
        stride in any::<u16>(),
        wait in proptest::option::of((0u8..32, any::<bool>())),
        notify in proptest::option::of(0u8..32),
        bank in 0u8..4,
        is_key in any::<bool>(),
        last_col in any::<bool>(),
    ) {
        let d = DataDescriptor {
            kind,
            ddr_addr,
            dmem_addr,
            rows,
            col_width: 1 << width_log,
            gather_src: gather,
            scatter_dst: scatter,
            rle,
            src_addr_inc: src_inc,
            dst_addr_inc: dst_inc,
            ddr_stride: stride,
            wait: wait.map(|(e, s)| EventCond { event: e, set: s }),
            notify,
            cmem_bank: bank,
            is_key,
            last_col,
        };
        prop_assert_eq!(DataDescriptor::decode(d.encode()), Some(d));
    }

    #[test]
    fn control_descriptor_roundtrips(
        back in 1u8..16,
        iters in any::<u16>(),
        ev in 0u8..32,
        set in any::<bool>(),
    ) {
        for c in [
            ControlDescriptor::Loop { back, iterations: iters },
            ControlDescriptor::SetEvent { event: ev },
            ControlDescriptor::ClearEvent { event: ev },
            ControlDescriptor::WaitEvent { cond: EventCond { event: ev, set } },
        ] {
            let d = Descriptor::Control(c);
            prop_assert_eq!(Descriptor::decode_bytes(&d.encode_bytes()), Some(d));
        }
    }

    // --- ISA encoding ---

    #[test]
    fn r_type_instructions_roundtrip(rd in arb_reg(), rs in arb_reg(), rt in arb_reg()) {
        for inst in [
            Inst::Add { rd, rs, rt },
            Inst::Sub { rd, rs, rt },
            Inst::Mul { rd, rs, rt },
            Inst::Crc32 { rd, rs, rt },
            Inst::Filt { rd, rs, rt },
        ] {
            prop_assert_eq!(encode::decode(encode::encode(inst)), Ok(inst));
        }
    }

    #[test]
    fn i_type_instructions_roundtrip(rt in arb_reg(), rs in arb_reg(), imm in any::<i16>()) {
        for inst in [
            Inst::Addi { rt, rs, imm },
            Inst::Lw { rt, rs, off: imm },
            Inst::Sd { rt, rs, off: imm },
            Inst::Beq { rs, rt, off: imm },
            Inst::Bvld { rt, rs, off: imm },
        ] {
            prop_assert_eq!(encode::decode(encode::encode(inst)), Ok(inst));
        }
    }

    // --- Q10.22 fixed point ---

    #[test]
    fn fixed_add_commutes(a in -500.0f64..500.0, b in -500.0f64..500.0) {
        let (qa, qb) = (Q10_22::from_f64(a), Q10_22::from_f64(b));
        prop_assert_eq!(qa + qb, qb + qa);
        prop_assert_eq!(qa * qb, qb * qa);
    }

    #[test]
    fn fixed_add_matches_float_within_eps(a in -200.0f64..200.0, b in -200.0f64..200.0) {
        let got = (Q10_22::from_f64(a) + Q10_22::from_f64(b)).to_f64();
        prop_assert!((got - (a + b)).abs() < 1e-5);
    }

    #[test]
    fn fixed_mul_matches_float_within_tolerance(a in -20.0f64..20.0, b in -20.0f64..20.0) {
        let got = (Q10_22::from_f64(a) * Q10_22::from_f64(b)).to_f64();
        prop_assert!((got - a * b).abs() < 1e-4, "got {}, want {}", got, a * b);
    }

    #[test]
    fn fixed_neg_is_involution(a in -500.0f64..500.0) {
        let q = Q10_22::from_f64(a);
        prop_assert_eq!(-(-q), q);
    }

    #[test]
    fn fixed_sqrt_squares_back(a in 0.001f64..500.0) {
        let r = Q10_22::from_f64(a).sqrt();
        let sq = (r * r).to_f64();
        prop_assert!((sq - a).abs() / a < 0.01, "sqrt({a})² = {sq}");
    }

    // --- BitVec ---

    #[test]
    fn bitvec_count_equals_iter_len(bits in proptest::collection::vec(any::<bool>(), 1..500)) {
        let bv = BitVec::from_fn(bits.len(), |i| bits[i]);
        prop_assert_eq!(bv.count(), bv.iter_set().count());
        prop_assert_eq!(bv.count(), bits.iter().filter(|&&b| b).count());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bv.get(i), b);
        }
    }

    #[test]
    fn bitvec_and_is_intersection(
        a in proptest::collection::vec(any::<bool>(), 64..256),
    ) {
        let n = a.len();
        let bva = BitVec::from_fn(n, |i| a[i]);
        let bvb = BitVec::from_fn(n, |i| i % 3 == 0);
        let c = bva.and(&bvb);
        for (i, &ai) in a.iter().enumerate() {
            prop_assert_eq!(c.get(i), ai && i % 3 == 0);
        }
    }

    // --- Hashes ---

    #[test]
    fn hashes_are_deterministic_functions(k in any::<u64>()) {
        prop_assert_eq!(crc32c_u64(k), crc32c_u64(k));
        prop_assert_eq!(murmur64(k), murmur64(k));
    }

    #[test]
    fn murmur_is_bijective_on_samples(a in any::<u64>(), b in any::<u64>()) {
        // The finalizer is invertible: distinct inputs → distinct outputs.
        prop_assume!(a != b);
        prop_assert_ne!(murmur64(a), murmur64(b));
    }

    // --- Partition schemes ---

    #[test]
    fn partitions_are_always_in_range(key in any::<i64>(), bits in 1u8..9) {
        use dpu_repro::dms::PartitionScheme;
        let s = PartitionScheme::HashRadix { radix_bits: bits };
        prop_assert!(s.partition_of(key) < s.partitions());
        let r = PartitionScheme::Radix { bits, shift: 3 };
        prop_assert!(r.partition_of(key) < r.partitions());
    }

    #[test]
    fn range_partitioning_is_monotonic(mut keys in proptest::collection::vec(-1000i64..1000, 2..50)) {
        use dpu_repro::dms::PartitionScheme;
        let s = PartitionScheme::Range { bounds: vec![-500, 0, 500] };
        keys.sort_unstable();
        let parts: Vec<usize> = keys.iter().map(|&k| s.partition_of(k)).collect();
        prop_assert!(parts.windows(2).all(|w| w[0] <= w[1]));
    }

    // --- Heap ---

    #[test]
    fn heap_allocations_are_disjoint(sizes in proptest::collection::vec(1u32..2000, 1..100)) {
        use dpu_repro::runtime::DpuHeap;
        let mut heap = DpuHeap::new(0, 1 << 22, 4);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            let addr = heap.alloc(i % 4, sz).unwrap();
            let end = addr + sz as u64;
            for &(a, e) in &spans {
                prop_assert!(end <= a || addr >= e, "overlap");
            }
            spans.push((addr, end));
        }
    }
}
