//! Property tests for the cost-based planner (`dpu-planner`): whatever
//! plan the optimizer picks — any join order, any merge placement, any
//! pushdown state — must execute bit-identically to the hand-wired
//! pipeline and to single-node execution, on random databases, under
//! random sharding policies and replication factors, and under node
//! faults; and the statistics it plans from must stay inside their
//! sketches' error bounds.

use std::collections::HashSet;

use proptest::prelude::*;

use dpu_repro::cluster::{Cluster, ClusterConfig, ClusterCore, FaultPlan, QueryId, ShardPolicy};
use dpu_repro::planner::{hoist_filters, pushdown, Catalog, Planner};
use dpu_repro::sql::logical::{q12_plan, q14_plan, q1_plan, q3_plan, q5_plan, q6_plan};
use dpu_repro::sql::tpch;
use dpu_repro::sql::Table;

fn arb_policy(keys: &[i64], shards: usize, use_range: bool) -> ShardPolicy {
    if use_range {
        ShardPolicy::range_over(keys, shards)
    } else {
        ShardPolicy::hash(shards)
    }
}

fn distinct(table: &Table, col: &str) -> usize {
    table.columns[table.col_index(col)].data.iter().collect::<HashSet<_>>().len()
}

proptest! {
    /// The planner's correctness bar: on a random database, sharding
    /// policy, and replication factor, the chosen plan AND every
    /// rejected alternative are bit-identical to the hand-wired
    /// pipeline and to single-node execution. (One random query per
    /// case; the fixed fixture below covers all eight at once.)
    #[test]
    fn planner_plans_match_hand_wired_on_random_clusters(
        orders_n in 40usize..160,
        seed in 0u64..32,
        shards in 2usize..7,
        use_range in any::<bool>(),
        replicas in 1usize..4,
        pick in 0usize..8,
    ) {
        let db = tpch::generate(orders_n, seed);
        let okeys = &db.orders.columns[db.orders.col_index("o_orderkey")].data;
        let policy = arb_policy(okeys, shards, use_range);
        let cfg = ClusterConfig::prototype_slice(policy.shards(), 10_000)
            .with_replicas(replicas.min(shards));
        let core = ClusterCore::new(db, &policy, cfg);
        let planner = Planner::new(&core);
        let mut cluster = Cluster::from_core(core);
        let id = QueryId::ALL[pick];
        let reference = cluster.try_run_at(id, 0.0).expect("healthy cluster");
        prop_assert!(reference.matches_single(), "{} hand-wired diverged", id.name());
        let choice = planner.plan(id);
        prop_assert!(choice.estimate.total_seconds() > 0.0);
        for plan in
            std::iter::once(&choice.plan).chain(choice.alternatives.iter().map(|(p, _)| p))
        {
            let run = cluster.run_planned(plan, 0.0).expect("healthy cluster");
            prop_assert!(
                run.query.matches_single(),
                "{} planner plan ({}) diverged from single-node", id.name(), plan.merge.name()
            );
            prop_assert_eq!(
                &run.query.output, &reference.output,
                "{} planner plan ({}) diverged from hand-wired", id.name(), plan.merge.name()
            );
        }
    }

    /// Planner-chosen plans inherit the cluster's fault tolerance: with
    /// a live replica per shard, a node crash changes the cost but
    /// never the result.
    #[test]
    fn planner_plans_survive_crashes_bit_identically(
        orders_n in 40usize..120,
        seed in 0u64..16,
        victim in 0usize..4,
        at in 0.0f64..0.2,
        pick in 0usize..8,
    ) {
        let db = tpch::generate(orders_n, seed);
        let core = ClusterCore::new(
            db,
            &ShardPolicy::hash(4),
            ClusterConfig::prototype_slice(4, 10_000).with_replicas(2),
        );
        let planner = Planner::new(&core);
        let mut cluster = Cluster::from_core(core);
        let id = QueryId::ALL[pick];
        let choice = planner.plan(id);
        let clean = cluster.run_planned(&choice.plan, 0.0).expect("healthy cluster");
        cluster.set_faults(FaultPlan::none().crash(victim, at));
        let faulted = cluster.run_planned(&choice.plan, 0.0).expect("k=2 survives one crash");
        prop_assert!(faulted.query.matches_single(), "{} diverged under fault", id.name());
        prop_assert_eq!(&faulted.query.output, &clean.query.output);
    }

    /// The catalog's merged HyperLogLog NDV estimates stay inside the
    /// sketch's error bounds against true distinct counts (precision 12
    /// → ~1.6% standard error; 6.5% here is ≈4σ, plus slack for tiny
    /// columns).
    #[test]
    fn catalog_ndv_estimates_stay_within_hll_bounds(
        orders_n in 100usize..400,
        seed in 0u64..32,
        shards in 2usize..7,
    ) {
        let db = tpch::generate(orders_n, seed);
        let core = ClusterCore::new(
            db.clone(),
            &ShardPolicy::hash(shards),
            ClusterConfig::prototype_slice(shards, 10_000),
        );
        let catalog = Catalog::from_core(&core);
        for (table, col) in [
            (&db.orders, "o_orderkey"),
            (&db.orders, "o_custkey"),
            (&db.lineitem, "l_partkey"),
            (&db.customer, "c_custkey"),
        ] {
            let truth = distinct(table, col) as f64;
            let est = catalog.ndv(col);
            let tol = 0.065 * truth + 2.0;
            prop_assert!(
                (est - truth).abs() <= tol,
                "{}: estimated {est:.1} vs true {truth} (tolerance {tol:.1})", col
            );
        }
    }

    /// Predicate placement is invisible in results: hoisting every scan
    /// filter up to a residual post-join filter changes nothing, and
    /// pushing them all back down restores the original plan's behavior.
    #[test]
    fn pushdown_never_changes_results(
        orders_n in 40usize..200,
        seed in 0u64..64,
        pick in 0usize..6,
    ) {
        let db = tpch::generate(orders_n, seed);
        let mut plans = vec![q1_plan(), q3_plan(), q5_plan(), q6_plan(), q12_plan(), q14_plan()];
        let plan = plans.swap_remove(pick);
        let reference = plan.execute(&db);
        let hoisted = hoist_filters(&plan);
        let scans_left: usize = hoisted.scans.iter().map(|s| s.filters.len()).sum();
        prop_assert_eq!(scans_left, 0, "{} kept scan filters after hoisting", plan.name);
        prop_assert_eq!(&hoisted.execute(&db), &reference, "{} hoisted diverged", &plan.name);
        let pushed = pushdown(&hoisted);
        prop_assert!(pushed.post_filters.is_empty(), "{} kept residuals", plan.name);
        prop_assert_eq!(&pushed.execute(&db), &reference, "{} pushed diverged", &plan.name);
    }
}

/// The fixed-fixture exactness sweep: all eight queries, chosen plan
/// plus every rejected alternative, bit-identical to hand-wired and
/// single-node. CI runs this (with the whole suite) at `DPU_THREADS`
/// 1 and 4 — the results must not depend on host parallelism.
#[test]
fn full_suite_planner_matches_hand_wired_and_single_node() {
    let db = tpch::generate(600, 7);
    let core =
        ClusterCore::new(db, &ShardPolicy::hash(8), ClusterConfig::prototype_slice(8, 10_000));
    let planner = Planner::new(&core);
    let mut cluster = Cluster::from_core(core);
    for id in QueryId::ALL {
        let reference = cluster.try_run_at(id, 0.0).expect("healthy cluster");
        assert!(reference.matches_single(), "{} hand-wired diverged", id.name());
        let choice = planner.plan(id);
        for plan in std::iter::once(&choice.plan).chain(choice.alternatives.iter().map(|(p, _)| p))
        {
            let run = cluster.run_planned(plan, 0.0).expect("healthy cluster");
            assert!(run.query.matches_single(), "{} planner plan diverged", id.name());
            assert_eq!(run.query.output, reference.output, "{} vs hand-wired", id.name());
        }
    }
}
