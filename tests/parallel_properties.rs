//! Property tests for the work-stealing host pool and every parallel
//! code path built on it: chunked TPC-H generation, the partitioned
//! hash-join and group-by kernels, and the pool's own ordering and
//! exactly-once guarantees. The engine's contract is that host thread
//! count is *pure performance*: any worker count, any chunking, must be
//! bit-identical to the sequential path.
//!
//! These tests build explicit `Pool`s instead of touching the process
//! global, so they can run concurrently with the rest of the suite.

use proptest::prelude::*;

use dpu_repro::pool::{chunk_bounds, Pool};
use dpu_repro::sql::tpch;
use dpu_repro::sql::{AggFunc, Column, GroupBySpec, HashJoin, Table};

proptest! {
    #[test]
    fn par_map_preserves_order_and_runs_each_item_exactly_once(
        n in 0usize..300,
        workers in 1usize..9,
    ) {
        let items: Vec<usize> = (0..n).collect();
        let out = Pool::new(workers).par_map(items, |i| i * 3 + 1);
        // Order and exactly-once in one shot: any duplicate, drop, or
        // reorder breaks the expected sequence.
        prop_assert_eq!(out, (0..n).map(|i| i * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_bounds_tile_the_range_exactly(
        n in 0usize..10_000,
        chunks in 1usize..33,
    ) {
        let bounds = chunk_bounds(n, chunks);
        let mut next = 0usize;
        for &(lo, hi) in &bounds {
            prop_assert_eq!(lo, next, "chunks must be contiguous");
            prop_assert!(lo < hi, "chunks must be non-empty");
            next = hi;
        }
        prop_assert_eq!(next, n, "chunks must cover 0..n");
    }

    #[test]
    fn chunked_datagen_is_bit_identical_to_sequential(
        orders_n in 1usize..160,
        seed in any::<u64>(),
        chunks in 1usize..12,
        workers in 1usize..5,
    ) {
        let sequential = tpch::generate(orders_n, seed);
        let chunked = tpch::generate_chunked_on(Pool::new(workers), orders_n, seed, chunks);
        prop_assert_eq!(sequential, chunked);
    }

    #[test]
    fn partitioned_join_is_bit_identical_to_sequential(
        bkeys in proptest::collection::vec(0i64..40, 1..200),
        pkeys in proptest::collection::vec(0i64..40, 1..200),
        fanout in 1u64..9,
        workers in 1usize..5,
    ) {
        let build = Table::new(vec![
            Column::i64("k", bkeys.clone()),
            Column::i64("bv", bkeys.iter().map(|&k| k * 10).collect()),
        ]);
        let probe = Table::new(vec![
            Column::i64("k", pkeys.clone()),
            Column::i64("pv", pkeys.iter().map(|&k| k + 1000).collect()),
        ]);
        let join = HashJoin {
            build_key: "k".into(),
            probe_key: "k".into(),
            build_cols: vec!["bv".into()],
            probe_cols: vec!["pv".into()],
        };
        let (seq, seq_max) = join.execute_seq(&build, &probe, fanout);
        let (par, par_max) = join.execute_on(Pool::new(workers), &build, &probe, fanout);
        prop_assert_eq!(seq, par);
        prop_assert_eq!(seq_max, par_max);
    }

    #[test]
    fn partitioned_group_by_is_bit_identical_to_sequential(
        keys in proptest::collection::vec(-20i64..20, 1..300),
        workers in 1usize..5,
    ) {
        let vals: Vec<i64> = keys.iter().enumerate().map(|(i, &k)| k * 7 + i as i64).collect();
        let table = Table::new(vec![
            Column::i64("g", keys),
            Column::i64("v", vals),
        ]);
        let spec = GroupBySpec {
            group_cols: vec!["g".into()],
            aggs: vec![
                ("n".into(), AggFunc::Count),
                ("s".into(), AggFunc::Sum("v".into())),
                ("lo".into(), AggFunc::Min("v".into())),
                ("hi".into(), AggFunc::Max("v".into())),
            ],
        };
        let seq = spec.execute_seq(&table, None);
        let par = spec.execute_on(Pool::new(workers), &table, None);
        prop_assert_eq!(seq, par);
    }
}
