//! Property tests for the work-stealing host pool and every parallel
//! code path built on it: chunked TPC-H generation, the partitioned
//! hash-join and group-by kernels, and the pool's own ordering and
//! exactly-once guarantees. The engine's contract is that host thread
//! count is *pure performance*: any worker count, any chunking, must be
//! bit-identical to the sequential path.
//!
//! Since PR 5 the same contract extends to cluster forking: a
//! [`Cluster::fork`] must be indistinguishable from a fresh
//! `Cluster::new` over the same database — for plain runs, full suites,
//! serving, and faulty serving — and a pool-parallel failover sweep
//! must be bit-identical at any `DPU_THREADS`.
//!
//! The property tests build explicit `Pool`s instead of touching the
//! process global, so they can run concurrently with the rest of the
//! suite; the one test that *does* flip the global thread count is safe
//! here because cluster results are width-invariant by construction.

use std::sync::Arc;

use proptest::prelude::*;

use dpu_repro::cluster::{
    serve_pipeline, serve_with_faults, Cluster, ClusterConfig, ClusterCore, DegradedWindow,
    FaultPlan, QueryId, ServeConfig, ShardPolicy, Speculation, Template,
};
use dpu_repro::pool::{chunk_bounds, set_global_threads, Pool};
use dpu_repro::sql::tpch;
use dpu_repro::sql::{AggFunc, Column, GroupBySpec, HashJoin, Table};
use dpu_repro::xeon::XeonRack;

const NODES: usize = 8;

proptest! {
    #[test]
    fn par_map_preserves_order_and_runs_each_item_exactly_once(
        n in 0usize..300,
        workers in 1usize..9,
    ) {
        let items: Vec<usize> = (0..n).collect();
        let out = Pool::new(workers).par_map(items, |i| i * 3 + 1);
        // Order and exactly-once in one shot: any duplicate, drop, or
        // reorder breaks the expected sequence.
        prop_assert_eq!(out, (0..n).map(|i| i * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_bounds_tile_the_range_exactly(
        n in 0usize..10_000,
        chunks in 1usize..33,
    ) {
        let bounds = chunk_bounds(n, chunks);
        let mut next = 0usize;
        for &(lo, hi) in &bounds {
            prop_assert_eq!(lo, next, "chunks must be contiguous");
            prop_assert!(lo < hi, "chunks must be non-empty");
            next = hi;
        }
        prop_assert_eq!(next, n, "chunks must cover 0..n");
    }

    #[test]
    fn chunked_datagen_is_bit_identical_to_sequential(
        orders_n in 1usize..160,
        seed in any::<u64>(),
        chunks in 1usize..12,
        workers in 1usize..5,
    ) {
        let sequential = tpch::generate(orders_n, seed);
        let chunked = tpch::generate_chunked_on(Pool::new(workers), orders_n, seed, chunks);
        prop_assert_eq!(sequential, chunked);
    }

    #[test]
    fn partitioned_join_is_bit_identical_to_sequential(
        bkeys in proptest::collection::vec(0i64..40, 1..200),
        pkeys in proptest::collection::vec(0i64..40, 1..200),
        fanout in 1u64..9,
        workers in 1usize..5,
    ) {
        let build = Table::new(vec![
            Column::i64("k", bkeys.clone()),
            Column::i64("bv", bkeys.iter().map(|&k| k * 10).collect()),
        ]);
        let probe = Table::new(vec![
            Column::i64("k", pkeys.clone()),
            Column::i64("pv", pkeys.iter().map(|&k| k + 1000).collect()),
        ]);
        let join = HashJoin {
            build_key: "k".into(),
            probe_key: "k".into(),
            build_cols: vec!["bv".into()],
            probe_cols: vec!["pv".into()],
        };
        let (seq, seq_max) = join.execute_seq(&build, &probe, fanout);
        let (par, par_max) = join.execute_on(Pool::new(workers), &build, &probe, fanout);
        prop_assert_eq!(seq, par);
        prop_assert_eq!(seq_max, par_max);
    }

    #[test]
    fn partitioned_group_by_is_bit_identical_to_sequential(
        keys in proptest::collection::vec(-20i64..20, 1..300),
        workers in 1usize..5,
    ) {
        let vals: Vec<i64> = keys.iter().enumerate().map(|(i, &k)| k * 7 + i as i64).collect();
        let table = Table::new(vec![
            Column::i64("g", keys),
            Column::i64("v", vals),
        ]);
        let spec = GroupBySpec {
            group_cols: vec!["g".into()],
            aggs: vec![
                ("n".into(), AggFunc::Count),
                ("s".into(), AggFunc::Sum("v".into())),
                ("lo".into(), AggFunc::Min("v".into())),
                ("hi".into(), AggFunc::Max("v".into())),
            ],
        };
        let seq = spec.execute_seq(&table, None);
        let par = spec.execute_on(Pool::new(workers), &table, None);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn fork_matches_fresh_cluster_for_run_and_run_all(
        orders_n in 20usize..90,
        seed in any::<u64>(),
        k in 1usize..4,
        qi in 0usize..8,
        node in 0usize..8,
    ) {
        let db = tpch::generate(orders_n, seed);
        let policy = ShardPolicy::hash(NODES);
        let cfg = ClusterConfig::prototype_slice(NODES, 5_000).with_replicas(k);

        // Dirty a parent as hard as the API allows — a straggler plan,
        // a speculation policy, and a completed run — then fork it. The
        // fork must be indistinguishable from a scratch cluster.
        let mut parent = Cluster::new(db.clone(), &policy, cfg.clone());
        parent.set_faults(FaultPlan::none().straggle(node, 0.0, 1e9, 0.5));
        parent.set_speculation(Some(Speculation::default()));
        parent.run(QueryId::ALL[qi]);

        let mut fork = parent.fork();
        let mut fresh = Cluster::new(db.clone(), &policy, cfg.clone());
        for (a, b) in fork.run_all().iter().zip(&fresh.run_all()) {
            prop_assert_eq!(&a.output, &b.output);
            prop_assert_eq!(&a.cost, &b.cost);
        }

        // And under a fresh fault plan: with a replica to fail over to,
        // fork and scratch must tell the same crash story.
        if k >= 2 {
            let mut fork = parent.fork();
            let mut fresh = Cluster::new(db, &policy, cfg);
            let plan = FaultPlan::none().crash(node, 0.0);
            fork.set_faults(plan.clone());
            fresh.set_faults(plan);
            let id = QueryId::ALL[qi];
            let a = fork.try_run_at(id, 0.0).expect("replica must cover the crash");
            let b = fresh.try_run_at(id, 0.0).expect("replica must cover the crash");
            prop_assert_eq!(&a.output, &b.output);
            prop_assert_eq!(&a.cost, &b.cost);
        }
    }

    #[test]
    fn fork_matches_fresh_cluster_for_serving(
        orders_n in 20usize..70,
        seed in any::<u64>(),
        k in 1usize..3,
        clients in 2usize..12,
    ) {
        let db = tpch::generate(orders_n, seed);
        let policy = ShardPolicy::hash(NODES);
        let cfg = ClusterConfig::prototype_slice(NODES, 5_000).with_replicas(k);

        let mut parent = Cluster::new(db.clone(), &policy, cfg.clone());
        parent.set_faults(FaultPlan::none().straggle(0, 0.0, 1e9, 0.5));
        parent.run(QueryId::Q10);
        let mut fork = parent.fork();
        let mut fresh = Cluster::new(db, &policy, cfg);

        fn templates(c: &mut Cluster) -> Vec<Template> {
            [QueryId::Q1, QueryId::Q6, QueryId::Q10]
                .iter()
                .map(|&id| {
                    let q = c.try_run_at(id, 0.0).expect("healthy run");
                    Template {
                        name: q.id.name(),
                        cost: q.cost.clone(),
                        xeon_seconds: q.single_cost.xeon.seconds,
                    }
                })
                .collect()
        }
        let t_fork = templates(&mut fork);
        let t_fresh = templates(&mut fresh);

        let rack = XeonRack::rack_42u();
        let scfg = ServeConfig {
            clients,
            duration_seconds: 5.0,
            concurrency: 2,
            ..ServeConfig::default()
        };
        let fabric = fork.cfg().fabric.clone();
        let a = serve_pipeline(&t_fork, fork.watts(), &rack, &scfg, None, Some((&fabric, NODES)));
        let b = serve_pipeline(&t_fresh, fresh.watts(), &rack, &scfg, None, Some((&fabric, NODES)));
        prop_assert_eq!(a, b);

        let window =
            DegradedWindow { from_seconds: 1.0, until_seconds: 2.0, cost_factor: 1.5 };
        let a = serve_with_faults(&t_fork, fork.watts(), &rack, &scfg, Some(&window));
        let b = serve_with_faults(&t_fresh, fresh.watts(), &rack, &scfg, Some(&window));
        prop_assert_eq!(a, b);
    }
}

/// One compact failover matrix — every query × every victim at k = 2 —
/// fanned out on the *global* pool, each cell an O(1) fork of `core`.
fn failover_matrix(core: &Arc<ClusterCore>) -> Vec<(&'static str, usize, usize, String)> {
    let mut cells = Vec::new();
    for id in QueryId::ALL {
        for victim in 0..NODES {
            cells.push((id, victim));
        }
    }
    Pool::global().par_map(cells, |(id, victim)| {
        let mut c = Cluster::from_core(core.clone());
        c.set_faults(FaultPlan::none().crash(victim, 0.0));
        let q = c.try_run_at(id, 0.0).expect("replica must cover the crash");
        (id.name(), victim, q.cost.failovers, format!("{:?}", q.output))
    })
}

#[test]
fn failover_matrix_is_identical_at_any_thread_count() {
    // The rack_tpch sweeps and CI byte-diff their committed baselines at
    // DPU_THREADS ∈ {1, 4}; this is the same claim in-process — the
    // host-parallel sweep is pure performance, never semantics.
    let core = ClusterCore::new(
        tpch::generate(300, 7),
        &ShardPolicy::hash(NODES),
        ClusterConfig::prototype_slice(NODES, 10_000).with_replicas(2),
    );
    set_global_threads(1);
    let one = failover_matrix(&core);
    set_global_threads(4);
    let four = failover_matrix(&core);
    assert_eq!(one, four, "failover matrix must not depend on host thread count");
}
