//! Runtime-layer integration: ATE work stealing and barriers driving
//! real per-core programs on the SoC.

use dpu_repro::ate::{AteOp, AteRequest, AteTarget};
use dpu_repro::soc::{CoreAction, CoreCtx, CoreProgram, Dpu, DpuConfig};

/// Each core repeatedly fetch-adds a shared chunk counter (the §5.4 work-
/// stealing scheduler) and "processes" its chunk by tagging a DRAM word.
struct Stealer {
    core: usize,
    n_chunks: u64,
    state: u8,
}

const COUNTER: u64 = 0;
const TAGS: u64 = 4096;

impl CoreProgram for Stealer {
    fn step(&mut self, ctx: &mut CoreCtx<'_>) -> CoreAction {
        match self.state {
            0 => {
                self.state = 1;
                CoreAction::Ate(AteRequest {
                    from: self.core,
                    to: 0,
                    target: AteTarget::Ddr(COUNTER),
                    op: AteOp::FetchAdd(1),
                })
            }
            1 => {
                let chunk = ctx.ate_value.take().expect("fetch-add response");
                if chunk >= self.n_chunks {
                    return CoreAction::Done;
                }
                // Claim: record which core processed this chunk (must be
                // unclaimed).
                let slot = TAGS + chunk * 8;
                assert_eq!(ctx.phys.read_u64(slot), 0, "chunk {chunk} claimed twice");
                ctx.phys.write_u64(slot, self.core as u64 + 1);
                self.state = 0;
                // Uneven work: odd cores are slower (the tail-latency
                // scenario dynamic scheduling exists for).
                CoreAction::Compute(if self.core % 2 == 1 { 5000 } else { 500 })
            }
            _ => CoreAction::Done,
        }
    }
}

#[test]
fn work_stealing_processes_every_chunk_exactly_once() {
    let mut dpu = Dpu::new(DpuConfig::test_small());
    let n_chunks = 200u64;
    let mut programs: Vec<Box<dyn CoreProgram>> = (0..dpu.n_cores())
        .map(|core| Box::new(Stealer { core, n_chunks, state: 0 }) as Box<dyn CoreProgram>)
        .collect();
    dpu.run(&mut programs).expect("runs");

    assert!(dpu.phys().read_u64(COUNTER) >= n_chunks);
    let mut per_core = vec![0u64; dpu.n_cores()];
    for c in 0..n_chunks {
        let tag = dpu.phys().read_u64(TAGS + c * 8);
        assert!(tag > 0, "chunk {c} unprocessed");
        per_core[(tag - 1) as usize] += 1;
    }
    assert_eq!(per_core.iter().sum::<u64>(), n_chunks);
    // Dynamic scheduling: fast (even) cores claim more chunks than slow
    // (odd) ones.
    let fast: u64 = per_core.iter().step_by(2).sum();
    let slow: u64 = per_core.iter().skip(1).step_by(2).sum();
    assert!(fast > slow * 2, "fast cores should steal most of the work: fast={fast}, slow={slow}");
}

#[test]
fn serialized_owner_discipline_over_the_runtime() {
    use dpu_repro::ate::{Ate, AteConfig};
    use dpu_repro::mem::{Cache, CacheConfig, PhysMem};
    use dpu_repro::runtime::{serialized_call, SerializedRegion};
    use dpu_repro::sim::Time;

    let mut ate = Ate::new(AteConfig::default(), 32);
    let mut phys = PhysMem::new(4096);
    let mut caller = Cache::new(CacheConfig::dpcore_l1d());
    let mut owner = Cache::new(CacheConfig::dpcore_l1d());
    let region = SerializedRegion { owner: 9, addr: 128, len: 64 };

    // Ten serialized increments from different cores: the owner's
    // injection port orders them; the final value is exact.
    let mut t = Time::ZERO;
    for from in 0..10 {
        let (_, done) = serialized_call(
            region,
            from,
            t,
            &mut ate,
            &mut phys,
            &mut caller,
            &mut owner,
            40,
            |p| {
                let v = p.read_u64(128);
                p.write_u64(128, v + 1);
            },
        );
        t = done;
    }
    assert_eq!(phys.read_u64(128), 10);
    assert!(t.cycles() > 10 * 100, "serialization cost is visible");
}

#[test]
fn heap_backs_simulated_dram_structures() {
    use dpu_repro::runtime::DpuHeap;
    let mut dpu = Dpu::new(DpuConfig::test_small());
    let mut heap = DpuHeap::new(1 << 20, 1 << 20, dpu.n_cores());
    // Allocate per-core buffers and write through physical memory.
    let mut addrs = Vec::new();
    for core in 0..dpu.n_cores() {
        let a = heap.alloc(core, 256).expect("alloc");
        dpu.phys_mut().write_u64(a, core as u64 * 11);
        addrs.push(a);
    }
    for (core, &a) in addrs.iter().enumerate() {
        assert_eq!(dpu.phys().read_u64(a), core as u64 * 11);
    }
}
