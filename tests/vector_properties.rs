//! Differential property suite for the SWAR kernels (`dpu_sql::vector`).
//!
//! The engine's contract since PR 7: `DPU_VECTOR` is *pure performance*.
//! For every table size (including row counts ≢ 0 mod 64 and empty
//! tables), every predicate (all-match, none-match, extreme bands),
//! every fanout, every group-key distribution (including `i64::MIN/MAX`
//! keys), and every `DPU_THREADS`, the vectorized filter / partition /
//! join / agg kernels must be **bit-identical** to the scalar reference
//! paths — same words, same row order, same accumulator values.
//!
//! Tests pass explicit [`Kernel`] arguments instead of flipping the
//! process-wide `DPU_VECTOR` resolution, so the suite is safe under the
//! harness's concurrent test execution and runs identically no matter
//! which kernel the environment selects.

use proptest::prelude::*;

use dpu_repro::isa::hash::{
    crc32c_u64, crc32c_u64_hw, crc32c_u64_table, crc32c_u64_x4, crc32c_u64_x4_hw, crc32c_wide,
    crc32c_wide_hw, crc32c_wide_table, crc32c_wide_x4, crc32c_wide_x4_hw, hw_crc_available,
};
use dpu_repro::pool::Pool;
use dpu_repro::sql::{
    partition_row_ids_with, sort_indices_multi_with, sort_indices_with, top_k_with, AggFunc,
    BitVec, Column, CompareOp, Expr, FilterSpec, GroupBySpec, HashJoin, Kernel, Table,
};

/// Widens a tagged raw value into a key distribution that exercises
/// extremes (`i64::MIN`, `i64::MAX`), small dense ranges (collisions),
/// and full-domain values.
fn shape_value(raw: i64, tag: u8) -> i64 {
    match tag {
        0 => i64::MIN,
        1 => i64::MAX,
        2..=4 => raw.rem_euclid(16),   // dense: many duplicate keys
        5..=6 => raw.rem_euclid(4096), // medium cardinality
        _ => raw,                      // full domain
    }
}

/// A value-column strategy over the shaped distribution.
fn values(max_len: usize) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec((any::<i64>(), any::<u8>()), 0..max_len)
        .prop_map(|pairs| pairs.into_iter().map(|(raw, tag)| shape_value(raw, tag % 8)).collect())
}

/// A comparison-operator strategy covering every `CompareOp` arm plus
/// always-true and always-false bands.
fn compare_op() -> impl Strategy<Value = CompareOp> {
    (any::<i64>(), any::<i64>(), 0u8..8).prop_map(|(a, b, arm)| {
        let (lo, hi) = (a.min(b), a.max(b));
        match arm {
            0 => CompareOp::Between(lo, hi),
            1 => CompareOp::Eq(a),
            // Guard the band() ±1 arithmetic against i64 overflow.
            2 => CompareOp::Lt(a.max(i64::MIN + 1)),
            3 => CompareOp::Le(a),
            4 => CompareOp::Gt(a.min(i64::MAX - 1)),
            5 => CompareOp::Ge(a),
            6 => CompareOp::Between(i64::MIN, i64::MAX), // all match
            _ => CompareOp::Between(1, 0),               // empty band: none match
        }
    })
}

proptest! {
    #[test]
    fn swar_filter_is_bit_identical_to_scalar(
        data in values(400),
        op in compare_op(),
    ) {
        let t = Table::new(vec![Column::i64("x", data)]);
        let spec = FilterSpec::new("x", op);
        let scalar = spec.apply_with(&t, Kernel::Scalar);
        let swar = spec.apply_with(&t, Kernel::Swar);
        // Word-for-word equality (PartialEq covers words + len), so
        // tail-lane masking bugs cannot hide behind popcounts.
        prop_assert_eq!(&scalar, &swar);
        prop_assert_eq!(scalar.words(), swar.words());
    }

    #[test]
    fn swar_partition_is_bit_identical_to_scalar(
        keys in values(400),
        fanout in 1u64..40,
        base in 0usize..10_000,
    ) {
        let scalar = partition_row_ids_with(&keys, base, fanout, Kernel::Scalar);
        let swar = partition_row_ids_with(&keys, base, fanout, Kernel::Swar);
        prop_assert_eq!(scalar, swar);
    }

    #[test]
    fn swar_join_is_bit_identical_to_scalar(
        bkeys in values(200),
        pkeys in values(200),
        fanout in 1u64..10,
        workers in 1usize..5,
    ) {
        let build = Table::new(vec![
            Column::i64("k", bkeys.clone()),
            Column::i64("bv", bkeys.iter().map(|&k| k ^ 0x5A5A).collect()),
        ]);
        let probe = Table::new(vec![
            Column::i64("k", pkeys.clone()),
            Column::i64("pv", pkeys.iter().map(|&k| k.wrapping_add(17)).collect()),
        ]);
        let join = HashJoin {
            build_key: "k".into(),
            probe_key: "k".into(),
            build_cols: vec!["bv".into()],
            probe_cols: vec!["pv".into(), "k".into()],
        };
        let (scalar, scalar_max) = join.execute_seq_with(&build, &probe, fanout, Kernel::Scalar);
        let (swar, swar_max) = join.execute_seq_with(&build, &probe, fanout, Kernel::Swar);
        // Exact row order, not just multiset equality.
        prop_assert_eq!(&scalar, &swar);
        prop_assert_eq!(scalar_max, swar_max);
        // The pool path composes with either kernel unchanged (its
        // chunking merges per-chunk partitions in input order).
        let (pooled, pooled_max) = join.execute_on(Pool::new(workers), &build, &probe, fanout);
        prop_assert_eq!(&scalar, &pooled);
        prop_assert_eq!(scalar_max, pooled_max);
    }

    #[test]
    fn swar_group_by_is_bit_identical_to_scalar(
        keys in values(400),
        sel_stride in proptest::option::of(1usize..7),
        workers in 1usize..5,
    ) {
        let vals: Vec<i64> =
            keys.iter().enumerate().map(|(i, &k)| (k % 1000).wrapping_mul(3) + i as i64).collect();
        let t = Table::new(vec![
            Column::i64("g", keys.clone()),
            Column::i64("v", vals.clone()),
            Column::i64("d", vals.iter().map(|v| v % 13).collect()),
        ]);
        let spec = GroupBySpec {
            group_cols: vec!["g".into()],
            aggs: vec![
                ("cnt".into(), AggFunc::Count),
                ("s".into(), AggFunc::Sum("v".into())),
                ("lo".into(), AggFunc::Min("v".into())),
                ("hi".into(), AggFunc::Max("v".into())),
                ("sp".into(), AggFunc::SumProduct("v".into(), "d".into())),
            ],
        };
        let sel = sel_stride.map(|m| BitVec::from_fn(keys.len(), |i| i % m != 0));
        let scalar = spec.execute_seq(&t, sel.as_ref());
        let swar = spec.execute_vector(&t, sel.as_ref());
        prop_assert_eq!(&scalar, &swar);
        // Pool leaves run the SWAR probe too; both kernels must agree
        // with the sequential reference at any worker count.
        for kernel in [Kernel::Scalar, Kernel::Swar] {
            let pooled = spec.execute_on_with(Pool::new(workers), &t, sel.as_ref(), kernel);
            prop_assert_eq!(&scalar, &pooled, "kernel {:?}", kernel);
        }
    }

    #[test]
    fn table_and_four_lane_crc_match_bit_serial(key in any::<u64>()) {
        let want = crc32c_u64(key);
        prop_assert_eq!(crc32c_u64_table(key), want);
        prop_assert_eq!(crc32c_u64_x4([key; 4]), [want; 4]);
    }

    #[test]
    fn swar_multi_key_group_by_is_bit_identical_to_scalar(
        (k1, k2, k3, width) in key_columns(),
        sel_stride in proptest::option::of(1usize..7),
        workers in 1usize..5,
    ) {
        let len = k1.len();
        let vals: Vec<i64> = (0..len as i64).map(|i| i.wrapping_mul(7) - 3).collect();
        let t = Table::new(vec![
            Column::i64("a", k1),
            Column::i64("b", k2),
            Column::i64("c", k3),
            Column::i64("v", vals),
        ]);
        let spec = GroupBySpec {
            group_cols: ["a", "b", "c"][..width].iter().map(|s| s.to_string()).collect(),
            aggs: vec![
                ("cnt".into(), AggFunc::Count),
                ("s".into(), AggFunc::Sum("v".into())),
                ("lo".into(), AggFunc::Min("v".into())),
                ("hi".into(), AggFunc::Max("v".into())),
            ],
        };
        let sel = sel_stride.map(|m| BitVec::from_fn(len, |i| i % m != 0));
        let scalar = spec.execute_seq(&t, sel.as_ref());
        for kernel in [Kernel::Swar, Kernel::HwCrc] {
            let vectored = spec.execute_vector_with(&t, sel.as_ref(), kernel);
            prop_assert_eq!(&scalar, &vectored, "kernel {:?}", kernel);
            // Pool leaves aggregate through the same composite-key SWAR
            // probe; the partitioned merge must land on the same table.
            let pooled = spec.execute_on_with(Pool::new(workers), &t, sel.as_ref(), kernel);
            prop_assert_eq!(&scalar, &pooled, "pooled kernel {:?}", kernel);
        }
    }

    #[test]
    fn swar_top_k_is_bit_identical_to_scalar(
        data in values(400),
        k in 1usize..50,
        workers in 1usize..6,
        sel_stride in proptest::option::of(1usize..5),
    ) {
        let t = Table::new(vec![Column::i64("v", data.clone())]);
        let sel = sel_stride.map(|m| BitVec::from_fn(data.len(), |i| i % m != 0));
        let scalar = top_k_with(&t, "v", k, workers, sel.as_ref(), Kernel::Scalar);
        for kernel in [Kernel::Swar, Kernel::HwCrc] {
            let got = top_k_with(&t, "v", k, workers, sel.as_ref(), kernel);
            prop_assert_eq!(&scalar, &got, "kernel {:?}", kernel);
        }
    }

    #[test]
    fn swar_sort_is_bit_identical_to_scalar(
        (k1, k2, _k3, width) in key_columns(),
        workers in 1usize..16,
        sel_stride in proptest::option::of(1usize..5),
    ) {
        let len = k1.len();
        let t = Table::new(vec![Column::i64("a", k1), Column::i64("b", k2)]);
        let sel = sel_stride.map(|m| BitVec::from_fn(len, |i| i % m != 0));
        let scalar = sort_indices_with(&t, "a", workers, sel.as_ref(), Kernel::Scalar);
        for kernel in [Kernel::Swar, Kernel::HwCrc] {
            let got = sort_indices_with(&t, "a", workers, sel.as_ref(), kernel);
            prop_assert_eq!(&scalar, &got, "single-key kernel {:?}", kernel);
        }
        let cols: Vec<&str> = ["a", "b"][..width.min(2)].to_vec();
        let scalar = sort_indices_multi_with(&t, &cols, workers, sel.as_ref(), Kernel::Scalar);
        for kernel in [Kernel::Swar, Kernel::HwCrc] {
            let got = sort_indices_multi_with(&t, &cols, workers, sel.as_ref(), kernel);
            prop_assert_eq!(&scalar, &got, "multi-key kernel {:?}", kernel);
        }
    }

    #[test]
    fn swar_expression_eval_is_bit_identical_to_scalar(data in values(300)) {
        // Divisors shaped strictly positive: division by zero panics (by
        // contract) and `i64::MIN / -1` would trap in both arms.
        let divisor: Vec<i64> = data.iter().map(|&v| v.rem_euclid(1000) + 1).collect();
        let t = Table::new(vec![Column::i64("x", data), Column::i64("d", divisor)]);
        let e = Expr::Clamp(
            Box::new(
                (Expr::col("x") * Expr::lit(3) + Expr::col("x") - Expr::lit(7)) / Expr::col("d"),
            ),
            -(1 << 40),
            1 << 40,
        );
        let scalar = e.eval_with(&t, Kernel::Scalar);
        for kernel in [Kernel::Swar, Kernel::HwCrc] {
            prop_assert_eq!(&scalar, &e.eval_with(&t, kernel), "kernel {:?}", kernel);
        }
    }
}

/// Three equal-length shaped key columns plus a group-key width in
/// `1..=3`, for composite-key differential tests.
fn key_columns() -> impl Strategy<Value = (Vec<i64>, Vec<i64>, Vec<i64>, usize)> {
    ((values(200), values(200)), (values(200), 1usize..=3)).prop_map(
        |((mut k1, mut k2), (mut k3, width))| {
            // Independently-sized draws truncate to one shared length.
            let len = k1.len().min(k2.len()).min(k3.len());
            k1.truncate(len);
            k2.truncate(len);
            k3.truncate(len);
            (k1, k2, k3, width)
        },
    )
}

/// Tail lanes: every row count straddling the 64-row word boundary must
/// mask identically, for every predicate shape.
#[test]
fn filter_tail_lanes_are_exact_at_word_boundaries() {
    for len in [0usize, 1, 2, 3, 4, 5, 63, 64, 65, 127, 128, 129, 191, 192, 193] {
        let data: Vec<i64> = (0..len as i64).map(|i| (i * 37) % 50 - 25).collect();
        let t = Table::new(vec![Column::i64("x", data)]);
        for op in [
            CompareOp::Between(-10, 10),
            CompareOp::Between(i64::MIN, i64::MAX), // all match
            CompareOp::Between(1, 0),               // none match
            CompareOp::Eq(0),
            CompareOp::Ge(0),
        ] {
            let spec = FilterSpec::new("x", op);
            let scalar = spec.apply_with(&t, Kernel::Scalar);
            let swar = spec.apply_with(&t, Kernel::Swar);
            assert_eq!(scalar, swar, "len={len} op={op:?}");
            assert_eq!(scalar.words(), swar.words(), "len={len} op={op:?}");
        }
    }
}

/// Group keys at the signed extremes flow through CRC hashing, open
/// addressing, and the final key sort exactly like the scalar HashMap.
#[test]
fn group_by_extreme_keys_are_exact() {
    let keys = vec![i64::MIN, i64::MAX, 0, -1, 1, i64::MIN, i64::MAX, i64::MIN + 1, i64::MAX - 1];
    let vals: Vec<i64> = (0..keys.len() as i64).collect();
    let t = Table::new(vec![Column::i64("g", keys), Column::i64("v", vals)]);
    let spec = GroupBySpec {
        group_cols: vec!["g".into()],
        aggs: vec![
            ("cnt".into(), AggFunc::Count),
            ("lo".into(), AggFunc::Min("v".into())),
            ("hi".into(), AggFunc::Max("v".into())),
        ],
    };
    assert_eq!(spec.execute_seq(&t, None), spec.execute_vector(&t, None));
}

/// Empty tables and empty selections produce identical empty results.
#[test]
fn empty_inputs_are_exact() {
    let t = Table::new(vec![Column::i64("g", vec![]), Column::i64("v", vec![])]);
    let spec = GroupBySpec {
        group_cols: vec!["g".into()],
        aggs: vec![("s".into(), AggFunc::Sum("v".into()))],
    };
    assert_eq!(spec.execute_seq(&t, None), spec.execute_vector(&t, None));

    let spec_f = FilterSpec::new("g", CompareOp::Ge(0));
    assert_eq!(spec_f.apply_with(&t, Kernel::Scalar), spec_f.apply_with(&t, Kernel::Swar));

    assert_eq!(
        partition_row_ids_with(&[], 0, 8, Kernel::Scalar),
        partition_row_ids_with(&[], 0, 8, Kernel::Swar),
    );

    // All-false selection: the SWAR path sees zero selected rows.
    let t2 = Table::new(vec![Column::i64("g", vec![1, 2, 3]), Column::i64("v", vec![4, 5, 6])]);
    let none = BitVec::new(3);
    assert_eq!(spec.execute_seq(&t2, Some(&none)), spec.execute_vector(&t2, Some(&none)));
}

/// The table-driven and 4-lane CRC32-C engines agree with the bit-serial
/// reference over a seeded 1M-key sample (SplitMix64 stream), scanned in
/// lane batches exactly as the partition kernel consumes them.
#[test]
fn crc_lanes_match_bit_serial_over_a_million_keys() {
    let mut next = splitmix(0x9E37_79B9_7F4A_7C15);
    for batch in 0..250_000u64 {
        let keys = [next(), next(), next(), next()];
        let lanes = crc32c_u64_x4(keys);
        for (j, &k) in keys.iter().enumerate() {
            let want = crc32c_u64(k);
            assert_eq!(lanes[j], want, "batch {batch} lane {j} key {k:#x}");
            assert_eq!(crc32c_u64_table(k), want, "batch {batch} key {k:#x}");
        }
    }
}

/// A seeded SplitMix64 stream (fixed seed ⇒ reproducible failures).
fn splitmix(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed;
    move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The SSE4.2 hardware CRC engine agrees with the table and bit-serial
/// engines over a seeded sample of single and multi-word keys. Skips
/// cleanly (the wrappers fall back to the table engine anyway) on hosts
/// without SSE4.2.
#[test]
fn hardware_crc_matches_table_and_bit_serial() {
    if !hw_crc_available() {
        eprintln!("skipping: host lacks SSE4.2");
        return;
    }
    let mut next = splitmix(0xDEAD_BEEF_CAFE_F00D);
    for round in 0..50_000u64 {
        let k = next();
        let want = crc32c_u64(k);
        assert_eq!(crc32c_u64_hw(k), want, "round {round} key {k:#x}");
        assert_eq!(crc32c_u64_table(k), want, "round {round} key {k:#x}");

        let quad = [next(), next(), next(), next()];
        assert_eq!(crc32c_u64_x4_hw(quad), crc32c_u64_x4(quad), "round {round}");

        let width = (round % 4 + 1) as usize;
        let wide: Vec<u64> = (0..width).map(|_| next()).collect();
        let want_wide = crc32c_wide(&wide);
        assert_eq!(crc32c_wide_hw(&wide), want_wide, "round {round} width {width}");
        assert_eq!(crc32c_wide_table(&wide), want_wide, "round {round} width {width}");

        let lanes_flat: Vec<Vec<u64>> =
            (0..4).map(|_| (0..width).map(|_| next()).collect()).collect();
        let lanes =
            [&lanes_flat[0][..], &lanes_flat[1][..], &lanes_flat[2][..], &lanes_flat[3][..]];
        assert_eq!(crc32c_wide_x4_hw(lanes), crc32c_wide_x4(lanes), "round {round} width {width}");
    }
}

/// Composite group keys pinning a signed extreme in each column position
/// survive flattening, wide-CRC hashing, probe compares, and the key
/// sort, with duplicate-heavy groups and all-false selections included.
#[test]
fn multi_key_groups_pin_signed_extremes_per_column() {
    let a = vec![i64::MIN, i64::MIN, i64::MAX, i64::MAX, 0, 0, i64::MIN, i64::MIN];
    let b = vec![i64::MAX, i64::MAX, i64::MIN, 0, i64::MIN, i64::MIN, i64::MAX, -1];
    let c = vec![0, 0, i64::MAX, i64::MIN, 1, 1, 0, i64::MIN + 1];
    let v: Vec<i64> = (0..a.len() as i64).map(|i| i * 11 - 40).collect();
    let t = Table::new(vec![
        Column::i64("a", a),
        Column::i64("b", b),
        Column::i64("c", c),
        Column::i64("v", v),
    ]);
    let spec = GroupBySpec {
        group_cols: vec!["a".into(), "b".into(), "c".into()],
        aggs: vec![
            ("cnt".into(), AggFunc::Count),
            ("s".into(), AggFunc::Sum("v".into())),
            ("lo".into(), AggFunc::Min("v".into())),
            ("hi".into(), AggFunc::Max("v".into())),
        ],
    };
    let none = BitVec::new(t.rows());
    for sel in [None, Some(&none)] {
        let scalar = spec.execute_seq(&t, sel);
        for kernel in [Kernel::Swar, Kernel::HwCrc] {
            assert_eq!(scalar, spec.execute_vector_with(&t, sel, kernel), "kernel {kernel:?}");
        }
    }
}

/// Duplicate values tied exactly at the k-th threshold: the pre-filter
/// must keep earlier-row ties and reject later-row ties exactly like the
/// scalar heap, across worker splits that cut through the tie run.
#[test]
fn top_k_ties_at_the_threshold_are_exact() {
    // 256 rows, half of them the constant 5 — k lands inside the ties.
    let vals: Vec<i64> = (0..256).map(|i| if i % 2 == 0 { 5 } else { i % 10 }).collect();
    let t = Table::new(vec![Column::i64("v", vals.clone())]);
    for k in [1usize, 3, 64, 128, 200] {
        // Reference: stable sort by (value desc, row asc).
        let mut want: Vec<usize> = (0..vals.len()).collect();
        want.sort_by(|&x, &y| vals[y].cmp(&vals[x]).then(x.cmp(&y)));
        want.truncate(k);
        for workers in [1usize, 3, 7] {
            for kernel in [Kernel::Scalar, Kernel::Swar] {
                let got = top_k_with(&t, "v", k, workers, None, kernel);
                assert_eq!(got, want, "k={k} workers={workers} kernel={kernel:?}");
            }
        }
    }
}

/// Equal sort keys stay in row order under both arms — the unstable
/// word sort must not be observably unstable.
#[test]
fn sort_keeps_equal_keys_in_row_order() {
    let a: Vec<i64> = (0..500).map(|i| i % 4).collect();
    let b: Vec<i64> = (0..500).map(|i| i % 2).collect();
    let t = Table::new(vec![Column::i64("a", a.clone()), Column::i64("b", b.clone())]);
    for workers in [1usize, 8] {
        let scalar = sort_indices_multi_with(&t, &["a", "b"], workers, None, Kernel::Scalar);
        let swar = sort_indices_multi_with(&t, &["a", "b"], workers, None, Kernel::Swar);
        assert_eq!(scalar, swar, "workers={workers}");
        for w in swar.windows(2) {
            let (x, y) = (w[0], w[1]);
            assert!(
                (a[x], b[x]) < (a[y], b[y]) || ((a[x], b[x]) == (a[y], b[y]) && x < y),
                "stability violated at rows {x},{y}"
            );
        }
    }
}

/// The filter's packed output words drive top-k and sort directly — no
/// per-row bool expansion — and land on the same rows as scalar
/// re-evaluation of the predicate.
#[test]
fn filter_words_feed_topk_and_sort_directly() {
    let vals: Vec<i64> = (0..1000).map(|i| (i * 37) % 211 - 100).collect();
    let t = Table::new(vec![Column::i64("v", vals.clone())]);
    let sel = FilterSpec::new("v", CompareOp::Gt(-50)).apply_with(&t, Kernel::Swar);
    for kernel in [Kernel::Scalar, Kernel::Swar] {
        let top = top_k_with(&t, "v", 25, 4, Some(&sel), kernel);
        assert!(top.iter().all(|&r| vals[r] > -50), "kernel {kernel:?}");
        assert_eq!(top, top_k_with(&t, "v", 25, 4, Some(&sel), Kernel::Scalar));
        let sorted = sort_indices_with(&t, "v", 8, Some(&sel), kernel);
        assert_eq!(sorted.len(), sel.count(), "kernel {kernel:?}");
        assert!(sorted.windows(2).all(|w| (vals[w[0]], w[0]) < (vals[w[1]], w[1])));
    }
}
