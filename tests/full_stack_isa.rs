//! Full-stack integration: a real dpCore binary drives the DMS.
//!
//! The program below is assembled to the dpCore ISA and executed by the
//! interpreter inside the SoC engine; its `dmspush` instruction hands a
//! descriptor it built in DMEM to the DMS, `wfe` blocks on the transfer,
//! and the core then CRC32s the delivered data — exercising ISA decode,
//! traps, descriptor decoding, DRAM timing, event flow control and DMEM
//! delivery in one pass.

use dpu_repro::dms::{DataDescriptor, Descriptor};
use dpu_repro::isa::asm::assemble;
use dpu_repro::isa::hash::crc32c_step;
use dpu_repro::soc::{CoreAction, CoreCtx, CoreProgram, Dpu, DpuConfig, IsaCoreProgram};

#[test]
fn isa_program_streams_via_dms_and_checksums() {
    let mut dpu = Dpu::new(DpuConfig::test_small());
    // 256 words of data at DDR 4096.
    for i in 0..256u32 {
        dpu.phys_mut().write_u32(4096 + i as u64 * 4, i * 7 + 1);
    }

    // Pre-build the descriptor in core 0's DMEM at address 512:
    // DDR 4096 → DMEM 0, 256 rows × 4 B, notify event 1.
    let desc = DataDescriptor::read(4096, 0, 256, 4).with_notify(1);
    let bytes = Descriptor::Data(desc).encode_bytes();
    dpu.dmem_mut(0).write(512, &bytes);

    // The dpCore program: push the descriptor, wait for event 1, then
    // fold all 256 words through the CRC32 instruction and store the
    // result at DMEM 2048.
    let prog = assemble(
        "       addi r1, r0, 512      # descriptor address
                dmspush 0, r1
                addi r2, r0, 1
                wfe  r2               # block until the DMS delivers
                addi r3, r0, 0        # crc accumulator
                addi r4, r0, 0        # data pointer
                addi r5, r0, 256      # row count
        loop:   lw   r6, 0(r4)
                crc32 r3, r3, r6
                addi r4, r4, 4
                addi r5, r5, -1
                bne  r5, r0, loop
                sw   r3, 2048(r0)
                halt",
    )
    .expect("assembles");

    let mut programs: Vec<Box<dyn CoreProgram>> =
        vec![Box::new(IsaCoreProgram::new(prog, dpu.config().dmem_bytes))];
    for _ in 1..dpu.n_cores() {
        programs.push(Box::new(|_: &mut CoreCtx<'_>| CoreAction::Done));
    }
    let report = dpu.run(&mut programs).expect("runs to completion");

    // Reference CRC over the same data.
    let mut want = 0u32;
    for i in 0..256u32 {
        want = crc32c_step(want, i * 7 + 1);
    }
    assert_eq!(dpu.dmem(0).read_u32(2048), want, "hardware CRC chain");
    assert_eq!(report.dms_bytes, 1024);
    assert!(report.busy[0] > 256, "the loop really executed");
}

#[test]
fn isa_program_uses_ate_fetch_add() {
    use dpu_repro::ate::{AteOp, AteRequest, AteTarget};
    use dpu_repro::soc::program::{encode_ate_msg, ATE_MSG_BYTES};

    let mut dpu = Dpu::new(DpuConfig::test_small());
    let n = dpu.n_cores();
    // Each ISA core issues one fetch-add(1) on DDR word 64 via `atereq`.
    let prog = assemble(
        "       addi r1, r0, 1024     # message address in DMEM
                atereq r1
                halt",
    )
    .unwrap();
    let mut programs: Vec<Box<dyn CoreProgram>> = Vec::new();
    for core in 0..n {
        let msg = encode_ate_msg(&AteRequest {
            from: core,
            to: 0,
            target: AteTarget::Ddr(64),
            op: AteOp::FetchAdd(1),
        });
        dpu.dmem_mut(core).write(1024, &msg);
        assert_eq!(msg.len(), ATE_MSG_BYTES);
        programs.push(Box::new(IsaCoreProgram::new(prog.clone(), dpu.config().dmem_bytes)));
    }
    dpu.run(&mut programs).expect("runs");
    assert_eq!(dpu.phys().read_u64(64), n as u64, "every core's increment landed");
}
